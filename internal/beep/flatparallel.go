package beep

import (
	"runtime/debug"

	"repro/internal/bitset"
)

// This file implements the FlatParallel engine: the flat cohort kernels
// of flat.go sharded over the sense-reversing worker pool of network.go.
//
// Layout. The pool's shards are contiguous vertex stripes padded to
// 64-vertex multiples, so a stripe [lo, hi) owns exactly the 64-bit
// words [lo/64, ceil(hi/64)) of every per-vertex bitset — stripes write
// disjoint cache lines of the sent/heard signal arrays AND disjoint
// words of the sender/heard bitsets, with no atomics anywhere on the
// hot path.
//
// Round structure (one barrier after each phase):
//
//	emit    — worker i runs EmitRange(lo, hi) on its private FlatEnv
//	pack    — worker i packs sent[lo:hi) into its words of the
//	          per-channel sender bitsets, counting its senders
//	          (coordinator sums the counts and applies the same
//	          sparse/dense cost model as the sequential flat engine,
//	          now fed by per-worker partial counts)
//	sparse: scatter — worker i ORs the CSR rows of the senders found in
//	          ITS word range into its own private full-length heard
//	          masks (writes land anywhere, but only in worker-private
//	          storage)
//	        merge   — worker i owns its word range of the final heard
//	          bitsets: it ORs word wi of every worker's private mask
//	          (ascending worker order — OR is commutative, so the
//	          result is deterministic regardless) and composes the
//	          heard signals of its own vertices
//	dense:  gather  — worker i runs the reference early-exit neighbor
//	          scan deliverRange(lo, hi)
//	update  — worker i runs UpdateRange(lo, hi)
//
// Determinism. Each vertex consumes randomness only from its own
// private stream, and each stripe touches only its own vertices'
// streams and sent entries, so the draws every vertex sees are
// identical to the sequential flat engine's — executions are
// bit-for-bit trace-equivalent for a fixed seed, independent of worker
// count and scheduling (enforced by TestEngineTraceEquivalence,
// TestFlatParallelWorkerCountInvariance and the churn/chaos matrices).
// The pre-phases that do consume shared streams (sleep, adversaries,
// noise) run sequentially on the coordinator, exactly as in every other
// engine.

// flatWorker is the per-worker state of the FlatParallel engine. The
// trailing pad keeps the per-round mutable fields of adjacent workers
// on different cache lines (the bitset payloads are heap-allocated
// elsewhere; only the counters/flags would otherwise share a line).
type flatWorker struct {
	// env is the worker's private kernel environment; Drew/Changed are
	// per-stripe and OR-folded by the coordinator after the barrier.
	env FlatEnv
	// scratch[c] is the worker's private heard accumulation mask for
	// channel c, full network length, valid only when active.
	scratch [2]bitset.Set
	// row is the worker's private neighbor scratch for synthesizing
	// backends, allocated lazily on first scatter; nil on the
	// materialized fast path.
	row []int32
	// senders is the worker's pack-phase sender count (all channels).
	senders int
	// drewW / changedW are the worker's private sparse-path output
	// masks (full mask length, lazily sized; see sparse.go). Each
	// worker clears its own mask at phase start and the coordinator
	// OR-folds them after the barrier.
	drewW, changedW []uint64
	// active reports that the worker reset and scattered into scratch
	// this round; merge skips inactive workers (their scratch words are
	// stale or never allocated).
	active bool
	_      [64]byte // cache-line padding between adjacent workers
}

// stepFlatParallel executes one synchronous round through the sharded
// flat kernels. Machine panics inside a kernel stripe are contained
// before the barrier join exactly like the interface-loop engines', so
// a panicking cohort pass never orphans the pool; the error carries
// Vertex = -1 (the kernel processes its stripe as a whole) and the
// failing phase.
func (n *Network) stepFlatParallel(ops FlatProtocol) *RunError {
	if n.quiet {
		// Quiescence elision, verbatim from the sequential flat engine:
		// the previous round was a fixed point and nothing external
		// touched the state since, so this round is byte-identical to
		// the last. One O(n) compare replaces the whole barrier dance.
		if n.flatQuiescer.StateUnchanged() {
			n.roundActive, n.roundFrontier = 0, 0
			return nil
		}
		n.quiet = false
	}
	n.drawSleep()
	n.drawAdversaries()
	skip := n.buildFlatSkip()
	for c := 0; c < n.channels; c++ {
		n.sizeSendBits(c)
		if hb := &n.heardBits[c]; hb.Len() != n.N() {
			hb.Resize(n.N())
		}
	}
	p := n.workers
	for i := range p.flat {
		w := &p.flat[i]
		w.env.Sent, w.env.Heard, w.env.Srcs = n.sent, n.heard, n.srcs
		w.env.Skip = skip
		w.env.Sampler = nil // FlatParallel never batches (see finishFlatSetup)
		w.env.Drew, w.env.Changed = false, false
		w.senders = 0
		w.active = false
	}
	n.flatParOps = ops
	p.runPhase(phaseFlatEmit)
	if err := p.takeError(); err != nil {
		return err
	}
	p.runPhase(phaseFlatPack)
	senders := 0
	for i := range p.flat {
		senders += p.flat[i].senders
	}
	if deliveryWantsGather(senders, n.avgDegree(), n.N()) {
		p.runPhase(phaseFlatGather)
	} else {
		p.runPhase(phaseFlatScatter)
		p.runPhase(phaseFlatMerge)
	}
	n.applyNoise()
	p.runPhase(phaseFlatUpdate)
	if err := p.takeError(); err != nil {
		return err
	}
	drew, changed := false, false
	for i := range p.flat {
		drew = drew || p.flat[i].env.Drew
		changed = changed || p.flat[i].env.Changed
	}
	if !drew && !changed && n.flatQuiescer != nil && skip == nil && !n.noise.enabled() {
		n.flatQuiescer.SnapshotState()
		n.quiet = true
	}
	return nil
}

// flatKernelRange invokes one cohort-kernel stripe (phase "emit" or
// "update") on the worker's private environment, with the same panic
// containment contract as emitRange/updateRange: the recovery happens
// inside this frame, so the worker returns normally and still joins its
// barrier.
func (n *Network) flatKernelRange(phase string, w *flatWorker, lo, hi int) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			rerr = &RunError{
				Vertex: -1, Round: n.round + 1, Phase: phase,
				Engine: n.engine, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	if phase == "emit" {
		n.flatParOps.EmitRange(&w.env, lo, hi)
	} else {
		n.flatParOps.UpdateRange(&w.env, lo, hi)
	}
	return nil
}

// flatPackRange packs the worker's vertex stripe into its words of the
// per-channel sender bitsets and records the stripe's sender count.
func (n *Network) flatPackRange(w *flatWorker, lo, hi int) {
	count := 0
	for c := 0; c < n.channels; c++ {
		count += n.packSendersRange(c, lo, hi)
	}
	w.senders = count
}

// flatScatterRange ORs the CSR rows of the senders found in the
// worker's word range into the worker's private heard masks. A stripe
// with no senders leaves its scratch untouched (and unallocated on the
// first rounds) and stays inactive, so the merge phase skips it.
func (n *Network) flatScatterRange(w *flatWorker, lo, hi int) {
	if w.senders == 0 {
		return
	}
	wlo, whi := lo>>6, (hi+63)>>6
	if n.csr == nil && w.row == nil {
		w.row = make([]int32, n.g.MaxDegree())
	}
	for c := 0; c < n.channels; c++ {
		sc := &w.scratch[c]
		if sc.Len() != n.N() {
			sc.Resize(n.N())
		} else {
			sc.Reset()
		}
		n.scatterWordsInto(c, sc.Words(), wlo, whi, w.row)
	}
	w.active = true
}

// flatMergeRange merges the word range owned by the stripe [lo, hi):
// for each of its words it ORs every active worker's private mask into
// the final heard bitsets, then composes the heard signals of its own
// vertices. Each word of the heard bitsets is written by exactly one
// worker (word-range ownership), so the merge needs no atomics; reads
// of other workers' masks are ordered by the scatter barrier.
func (n *Network) flatMergeRange(p *workerPool, lo, hi int) {
	wlo, whi := lo>>6, (hi+63)>>6
	for c := 0; c < n.channels; c++ {
		out := n.heardBits[c].Words()
		for wi := wlo; wi < whi; wi++ {
			var acc uint64
			for j := range p.flat {
				if p.flat[j].active {
					acc |= p.flat[j].scratch[c].Words()[wi]
				}
			}
			out[wi] = acc
		}
	}
	n.composeHeardRange(lo, hi)
}
