package beep

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// TestPartitionEquivalence pins the partition determinism contract: k
// networks each stepping only its own vertex range, with the sender
// words merged between emit and update exactly as a coordinator would,
// reproduce the single-process Flat execution signal for signal. The
// ranges are deliberately unaligned so the masked pack + OR-merge of
// shared edge words is exercised.
func TestPartitionEquivalence(t *testing.T) {
	g := graph.GNPAvgDegree(100, 5, rng.New(3))
	const rounds = 12

	// Reference: whole-network Flat execution, signals recorded per round.
	var refSent, refHeard [][]Signal
	ref, err := NewNetwork(g, flatPanicProtocol{round: -1}, 9, WithEngine(Flat),
		WithObserver(func(round int, sent, heard []Signal) {
			refSent = append(refSent, append([]Signal(nil), sent...))
			refHeard = append(refHeard, append([]Signal(nil), heard...))
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for r := 0; r < rounds; r++ {
		if err := ref.TryStep(); err != nil {
			t.Fatal(err)
		}
	}

	// Partitioned: one full network per range (as distributed workers
	// hold), stepped range-locally with a manual word merge.
	ranges := [][2]int{{0, 37}, {37, 70}, {70, 100}}
	parts := make([]*Partition, len(ranges))
	for i, r := range ranges {
		net, err := NewNetwork(g, flatPanicProtocol{round: -1}, 9, WithEngine(Flat))
		if err != nil {
			t.Fatal(err)
		}
		defer net.Close()
		p, err := net.Partition(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}

	words := (g.N() + 63) / 64
	merged := make([]uint64, words)
	for r := 0; r < rounds; r++ {
		for _, p := range parts {
			if _, err := p.EmitLocal(); err != nil {
				t.Fatalf("round %d: emit: %v", r+1, err)
			}
		}
		// Coordinator merge: OR each partition's own words (masked pack
		// keeps foreign bits zero, so shared edge words OR cleanly).
		for wi := range merged {
			merged[wi] = 0
		}
		for _, p := range parts {
			lo, hi := p.Range()
			w := p.SenderWords(0)
			for wi := lo >> 6; wi <= (hi-1)>>6; wi++ {
				merged[wi] |= w[wi]
			}
		}
		for _, p := range parts {
			for wi, w := range merged {
				p.SetSenderWord(0, wi, w)
			}
			if _, err := p.UpdateLocal(); err != nil {
				t.Fatalf("round %d: update: %v", r+1, err)
			}
		}
		for _, p := range parts {
			lo, hi := p.Range()
			sent, heard := p.Signals()
			for v := lo; v < hi; v++ {
				if sent[v] != refSent[r][v] {
					t.Fatalf("round %d vertex %d: partitioned sent %v, reference %v", r+1, v, sent[v], refSent[r][v])
				}
				if heard[v] != refHeard[r][v] {
					t.Fatalf("round %d vertex %d: partitioned heard %v, reference %v", r+1, v, heard[v], refHeard[r][v])
				}
			}
		}
	}
}

// TestPartitionValidation pins the construction-time rejections: bad
// ranges, protocols without flat kernels, and the shared-sequential-
// randomness features (noise, sleep, adversaries) that ranges cannot
// split.
func TestPartitionValidation(t *testing.T) {
	g := graph.Cycle(64)

	flat := func(opts ...Option) *Network {
		t.Helper()
		net, err := NewNetwork(g, flatPanicProtocol{round: -1}, 1, append([]Option{WithEngine(Flat)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(net.Close)
		return net
	}

	for _, bad := range [][2]int{{-1, 10}, {10, 5}, {0, 65}} {
		if _, err := flat().Partition(bad[0], bad[1]); err == nil {
			t.Fatalf("range [%d, %d) accepted", bad[0], bad[1])
		}
	}

	// No flat kernels (Sequential engine leaves flatOps nil even for
	// protocols that have them — Partition is tied to the flat path).
	seqNet, err := NewNetwork(g, panicProtocol{vertex: -1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer seqNet.Close()
	if _, err := seqNet.Partition(0, 10); err == nil || !strings.Contains(err.Error(), "flat kernels") {
		t.Fatalf("protocol without flat kernels accepted: %v", err)
	}

	if _, err := flat(WithNoise(Noise{PLoss: 0.2})).Partition(0, 10); err == nil {
		t.Fatal("noisy network accepted")
	}
	if _, err := flat(WithSleep(Sleep{P: 0.1})).Partition(0, 10); err == nil {
		t.Fatal("sleepy network accepted")
	}

	closed := flat()
	closed.Close()
	if _, err := closed.Partition(0, 10); err == nil {
		t.Fatal("closed network accepted")
	}
}

// TestPartitionPanicContainment pins the poisoning contract: a kernel
// panic inside a range pass surfaces as *RunError and poisons the
// network for every later call, like the engines.
func TestPartitionPanicContainment(t *testing.T) {
	g := graph.Cycle(64)
	net, err := NewNetwork(g, flatPanicProtocol{round: 0, phase: "emit"}, 1, WithEngine(Flat))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	p, err := net.Partition(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EmitLocal(); err == nil {
		t.Fatal("injected panic not surfaced")
	} else if rerr, ok := err.(*RunError); !ok || rerr.Phase != "emit" {
		t.Fatalf("emit fault surfaced as %T (%v), want *RunError{Phase: emit}", err, err)
	}
	if _, err := p.UpdateLocal(); err == nil {
		t.Fatal("poisoned network still updating")
	}
	if _, _, err := net.ExportRangeState(0, 32); err == nil {
		t.Fatal("poisoned network still exporting state")
	}
}
