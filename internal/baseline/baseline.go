// Package baseline implements the algorithms the paper positions itself
// against, so the experiment suite can reproduce its comparative claims:
//
//   - Jeavons–Scott–Xu [17]: the non-self-stabilizing O(log n) beeping
//     MIS algorithm with two-round phases that Algorithm 1 derives from.
//     Used to show Algorithm 1 keeps the same asymptotics while also
//     converging from arbitrary states, where Jeavons et al. does not.
//   - An Afek et al.-style restart baseline [1]: a self-stabilizing
//     beeping MIS built on attempt/restart competition with knowledge of
//     an upper bound N on n, whose stabilization time carries extra
//     log-factors — the O(log²N·log n) regime the paper improves on.
//   - Luby's classical algorithm [20] on the message-passing substrate,
//     the reference point from the LOCAL/CONGEST world.
//
// All baselines expose a common DecidedStatus so one harness measures
// them uniformly.
package baseline

import "fmt"

// Status is the externally visible decision state of a vertex in the
// baseline algorithms.
type Status uint8

const (
	// Active vertices are still competing.
	Active Status = iota + 1
	// InMIS vertices have joined the independent set.
	InMIS
	// Out vertices have a neighbor in the set.
	Out
)

// String names the status for traces.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case InMIS:
		return "inMIS"
	case Out:
		return "out"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Decider is implemented by baseline machines/nodes to expose their
// decision to the harness.
type Decider interface {
	Status() Status
}
