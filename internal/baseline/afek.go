package baseline

import (
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// AfekStyle is a self-stabilizing beeping MIS baseline in the spirit of
// Afek, Alon, Bar-Joseph, Cornejo, Haeupler and Kuhn [1]: vertices know
// an upper bound N on the network size and compete in attempts whose
// beeping probability ramps up from ~1/N to 1/2, restarting on any
// contention. The paper's related-work discussion attributes
// O(log²N · log n) stabilization to this family of algorithms; the
// baseline reproduces the *shape* (extra log factors from restarted
// ramps), which is what experiment E5 compares against Algorithm 1.
//
// Faithfulness note (documented substitution): the brief announcement
// cites [1] but does not restate its algorithm, and [1] gives several
// variants tied to its wake-up adversary model. This implementation
// keeps the defining ingredients — knowledge of N, exponentially ramped
// competition, restart on received beep, MIS members beeping in every
// round so neighbors can detect them and faults are observable — and is
// self-stabilizing under the same fault model as the paper's algorithms
// (Randomize reaches every state). It is labeled "afek-style" in all
// tables rather than claimed as the exact published algorithm.
//
// Mechanics per vertex (all in one beeping channel):
//
//   - MIS members beep every round. A member that hears beeps in
//     windowLen consecutive rounds concludes a conflicting member is
//     adjacent (its own beeps do not reach itself, and competitors
//     restart too quickly to sustain such a streak) and drops back to
//     competing with a coin flip per extra round, breaking symmetry.
//   - Out vertices stay silent; hearing silence for windowLen
//     consecutive rounds means the dominating member disappeared
//     (a fault), so they resume competing.
//   - Competitors run an attempt: sub-phase j ∈ {0..J} beeps with
//     probability 2^(j-J-1) (from 2^-(J+1) up to 1/2), advancing one
//     sub-phase per round. Hearing any beep restarts the attempt at
//     j = 0. Beeping alone in winStreak consecutive rounds at the top
//     sub-phase joins the MIS.
type AfekStyle struct {
	// N is the upper bound on the network size known to every vertex.
	N int
}

var _ beep.Protocol = AfekStyle{}

// NewAfekStyle returns the baseline for networks of at most nUpper
// vertices.
func NewAfekStyle(nUpper int) AfekStyle {
	if nUpper < 2 {
		nUpper = 2
	}
	return AfekStyle{N: nUpper}
}

// Channels reports the single beeping channel.
func (AfekStyle) Channels() int { return 1 }

// afekParams derives the ramp length and windows from N.
func (p AfekStyle) afekParams() (rampJ, window, winStreak int) {
	logN := 1
	for x := p.N - 1; x > 1; x >>= 1 {
		logN++
	}
	return logN, logN + 4, 3
}

// NewMachine returns a fresh competitor.
func (p AfekStyle) NewMachine(int, graph.Topology) beep.Machine {
	rampJ, window, winStreak := p.afekParams()
	return &afekMachine{
		status:    Active,
		rampJ:     rampJ,
		window:    window,
		winStreak: winStreak,
	}
}

// afekMachine is the per-vertex state of the restart baseline.
type afekMachine struct {
	status Status
	// j is the current sub-phase of the attempt (competitors).
	j int
	// wins counts consecutive solo beeps at the top sub-phase.
	wins int
	// heardRun counts consecutive rounds with a beep heard (members),
	// silentRun consecutive silent rounds (out vertices).
	heardRun  int
	silentRun int

	rampJ     int
	window    int
	winStreak int
}

var _ Decider = (*afekMachine)(nil)

// Emit beeps per the status: members always, competitors with the
// ramped probability, out vertices never.
func (m *afekMachine) Emit(src *rng.Source) beep.Signal {
	switch m.status {
	case InMIS:
		return beep.Chan1
	case Active:
		// Probability 2^(j-rampJ-1): Bernoulli2Pow takes the exponent l
		// with p = 2^-l, so l = rampJ + 1 - j (>= 1 at the top).
		if src.Bernoulli2Pow(m.rampJ + 1 - m.j) {
			return beep.Chan1
		}
	}
	return beep.Silent
}

// Update advances the attempt/window machinery.
func (m *afekMachine) Update(sent, heard beep.Signal) {
	heardBeep := heard.Has(beep.Chan1)
	switch m.status {
	case InMIS:
		if heardBeep {
			m.heardRun++
			if m.heardRun >= m.window && coinFromRun(m.heardRun) {
				// Sustained beeping next door: conflicting member.
				m.status = Active
				m.j, m.wins, m.heardRun = 0, 0, 0
			}
		} else {
			m.heardRun = 0
		}
	case Out:
		if heardBeep {
			m.silentRun = 0
		} else {
			m.silentRun++
			if m.silentRun >= m.window {
				// The dominating member vanished: compete again.
				m.status = Active
				m.j, m.wins, m.silentRun = 0, 0, 0
			}
		}
	default: // Active
		if heardBeep {
			// Contention: restart the ramp. A long streak of heard
			// beeps means a stable member is adjacent: drop out.
			m.j, m.wins = 0, 0
			m.heardRun++
			if m.heardRun >= m.window {
				m.status = Out
				m.silentRun = 0
				m.heardRun = 0
			}
			return
		}
		m.heardRun = 0
		if sent.Has(beep.Chan1) && m.j >= m.rampJ {
			m.wins++
			if m.wins >= m.winStreak {
				m.status = InMIS
				m.heardRun = 0
				return
			}
		} else if m.j >= m.rampJ {
			m.wins = 0
		}
		if m.j < m.rampJ {
			m.j++
		}
	}
}

// coinFromRun derives a deterministic-but-spread coin from the run
// length so that two adjacent conflicting members do not leave in
// lockstep forever. It alternates based on run parity mixed with the
// machine's identity-free local history; a fair source is not available
// in Update, so the asymmetry comes from differing run phases, and the
// remaining symmetric case is broken on the next competition ramp.
func coinFromRun(run int) bool { return run%2 == 0 }

// Randomize draws an arbitrary state of the machine's space.
func (m *afekMachine) Randomize(src *rng.Source) {
	m.status = []Status{Active, InMIS, Out}[src.Intn(3)]
	m.j = src.Intn(m.rampJ + 1)
	m.wins = src.Intn(m.winStreak)
	m.heardRun = src.Intn(m.window)
	m.silentRun = src.Intn(m.window)
}

// Status exposes the decision for the harness.
func (m *afekMachine) Status() Status { return m.status }
