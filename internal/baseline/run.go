package baseline

import (
	"errors"
	"fmt"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/msgnet"
)

// ErrNotConverged reports that a baseline did not reach a decided, legal
// configuration within its round budget.
var ErrNotConverged = errors.New("baseline: did not converge within the round budget")

// Result reports one baseline execution.
type Result struct {
	// Rounds until the termination condition was first observed.
	Rounds int
	// MIS is the claimed independent set (status == InMIS).
	MIS []bool
	// Valid reports whether MIS is a maximal independent set. For the
	// correct-by-design runs it is always true; E4 uses it to count the
	// failures of non-self-stabilizing baselines from corrupted states.
	Valid bool
}

// statusMask extracts the InMIS mask and whether any vertex is still
// Active from a status lookup.
func statusMask(n int, status func(v int) Status) (mis []bool, anyActive bool) {
	mis = make([]bool, n)
	for v := 0; v < n; v++ {
		switch status(v) {
		case InMIS:
			mis[v] = true
		case Active:
			anyActive = true
		}
	}
	return mis, anyActive
}

// RunBeeping executes a status-based beeping baseline (Jeavons or
// AfekStyle) until every vertex is decided and — when requireLegal is
// set (self-stabilizing baselines) — the decided configuration is a
// legal MIS. If randomizeInit is set the machines start from arbitrary
// states.
//
// With requireLegal unset the run stops at the first all-decided
// configuration and reports its validity in Result.Valid, which lets
// experiments show a non-self-stabilizing algorithm "terminating" on an
// illegal output.
func RunBeeping(g *graph.Graph, proto beep.Protocol, seed uint64, maxRounds int, randomizeInit, requireLegal bool) (*Result, error) {
	net, err := beep.NewNetwork(g, proto, seed)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	defer net.Close()
	if randomizeInit {
		net.RandomizeAll()
	}
	status := func(v int) Status {
		d, ok := net.Machine(v).(Decider)
		if !ok {
			return Active
		}
		return d.Status()
	}
	converged := func() bool {
		mis, anyActive := statusMask(g.N(), status)
		if anyActive {
			return false
		}
		if !requireLegal {
			return true
		}
		return g.VerifyMIS(mis) == nil
	}
	rounds, ok := net.Run(maxRounds, converged)
	mis, anyActive := statusMask(g.N(), status)
	if !ok || anyActive {
		return nil, fmt.Errorf("%w: %d rounds on %s", ErrNotConverged, rounds, g.Name())
	}
	return &Result{
		Rounds: rounds,
		MIS:    mis,
		Valid:  g.VerifyMIS(mis) == nil,
	}, nil
}

// RunLuby executes Luby's algorithm to completion (all vertices
// decided), returning the round count on the message-passing substrate.
func RunLuby(g *graph.Graph, seed uint64, maxRounds int) (*Result, error) {
	net, err := msgnet.NewNetwork(g, Luby{}, seed)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	status := func(v int) Status {
		return net.Node(v).(*lubyNode).Status()
	}
	converged := func() bool {
		_, anyActive := statusMask(g.N(), status)
		return !anyActive
	}
	rounds, ok := net.Run(maxRounds, converged)
	mis, anyActive := statusMask(g.N(), status)
	if !ok || anyActive {
		return nil, fmt.Errorf("%w: luby after %d rounds on %s", ErrNotConverged, rounds, g.Name())
	}
	return &Result{
		Rounds: rounds,
		MIS:    mis,
		Valid:  g.VerifyMIS(mis) == nil,
	}, nil
}
