package baseline

import (
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Jeavons is the beeping MIS algorithm of Jeavons, Scott and Xu [17]
// (with Ghaffari's refined analysis [13]): phases of two rounds with an
// adaptive beeping probability p, initially 1/2.
//
//	Round 1 of a phase: each active vertex beeps with probability p.
//	If it beeped and heard nothing, it becomes a candidate. p is halved
//	if a beep was heard, otherwise doubled (capped at 1/2).
//	Round 2: candidates beep and permanently join the MIS; active
//	vertices hearing the round-2 beep become permanently out.
//
// Decided (InMIS/Out) vertices stay silent forever. The algorithm is
// correct in O(log n) rounds w.h.p. *from its fixed initial state*, and
// Section 2 of the paper explains why it is not self-stabilizing: it
// needs p = 1/2 everywhere at start and global synchronization of the
// two-round phases. Randomize therefore draws an arbitrary state
// (status, probability exponent, phase parity, pending candidacy), and
// experiment E4 shows executions from such states deadlock or settle on
// non-MIS outputs.
type Jeavons struct{}

var _ beep.Protocol = Jeavons{}

// Channels reports the single beeping channel.
func (Jeavons) Channels() int { return 1 }

// NewMachine returns a fresh machine in the algorithm's defined initial
// state: active, p = 1/2, at the start of a phase.
func (Jeavons) NewMachine(int, graph.Topology) beep.Machine {
	return &jeavonsMachine{status: Active, exp: 1}
}

// jeavonsMachine is the per-vertex state: decision status, probability
// exponent (p = 2^-exp, exp >= 1), the parity of the current round
// within the phase, and a pending candidacy flag between the two rounds.
type jeavonsMachine struct {
	status    Status
	exp       int
	inRound2  bool
	candidate bool
}

var _ Decider = (*jeavonsMachine)(nil)

// Emit implements the two-round phase structure.
func (m *jeavonsMachine) Emit(src *rng.Source) beep.Signal {
	if m.status != Active {
		return beep.Silent
	}
	if m.inRound2 {
		if m.candidate {
			return beep.Chan1
		}
		return beep.Silent
	}
	if src.Bernoulli2Pow(m.exp) {
		return beep.Chan1
	}
	return beep.Silent
}

// Update applies the phase transition.
func (m *jeavonsMachine) Update(sent, heard beep.Signal) {
	if m.status != Active {
		return
	}
	if !m.inRound2 {
		// End of round 1: set candidacy and adapt p.
		m.candidate = sent.Has(beep.Chan1) && !heard.Has(beep.Chan1)
		if heard.Has(beep.Chan1) {
			m.exp++ // p ← p/2
		} else if m.exp > 1 {
			m.exp-- // p ← min{2p, 1/2}
		}
		m.inRound2 = true
		return
	}
	// End of round 2: candidates joined, listeners are dominated.
	switch {
	case m.candidate:
		m.status = InMIS
	case heard.Has(beep.Chan1):
		m.status = Out
	}
	m.candidate = false
	m.inRound2 = false
}

// Randomize draws an arbitrary machine state: this is what a transient
// fault (or an adversarial boot) can produce, and what the algorithm is
// not designed to recover from.
func (m *jeavonsMachine) Randomize(src *rng.Source) {
	m.status = []Status{Active, InMIS, Out}[src.Intn(3)]
	m.exp = 1 + src.Intn(20)
	m.inRound2 = src.Coin()
	m.candidate = src.Coin()
}

// Status exposes the decision for the harness.
func (m *jeavonsMachine) Status() Status { return m.status }
