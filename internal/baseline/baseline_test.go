package baseline

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Active: "active", InMIS: "inMIS", Out: "out", Status(9): "status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String()=%q want %q", s, got, want)
		}
	}
}

func testGraphs(t *testing.T) []*graph.Graph {
	t.Helper()
	src := rng.New(55)
	return []*graph.Graph{
		graph.Empty(6),
		graph.Path(25),
		graph.Cycle(24),
		graph.Complete(12),
		graph.Star(16),
		graph.Grid(5, 5),
		graph.GNP(60, 0.1, src),
	}
}

func TestJeavonsFreshProducesValidMIS(t *testing.T) {
	for _, g := range testGraphs(t) {
		res, err := RunBeeping(g, Jeavons{}, 17, 100000, false, false)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Valid {
			t.Fatalf("%s: Jeavons from fresh start produced invalid MIS", g.Name())
		}
		if err := g.VerifyMIS(res.MIS); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}

func TestJeavonsFailsFromCorruptedStates(t *testing.T) {
	// The defining non-self-stabilization claim: from arbitrary states,
	// some executions end in illegal configurations. Over several seeds
	// on a graph with many adjacent pairs, at least one must fail.
	g := graph.Complete(14)
	failures := 0
	for seed := uint64(0); seed < 20; seed++ {
		res, err := RunBeeping(g, Jeavons{}, seed, 20000, true, false)
		if err != nil || !res.Valid {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("Jeavons recovered from all corrupted states; expected failures (it is not self-stabilizing)")
	}
}

func TestJeavonsMachineTransitions(t *testing.T) {
	m := &jeavonsMachine{status: Active, exp: 1}

	// Round 1: beeped alone → candidate, p doubled (already at cap 1/2).
	m.Update(beep.Chan1, beep.Silent)
	if !m.candidate || !m.inRound2 || m.exp != 1 {
		t.Fatalf("after solo beep: %+v", m)
	}
	// Round 2: candidate joins.
	m.Update(beep.Chan1, beep.Silent)
	if m.status != InMIS {
		t.Fatalf("candidate did not join: %+v", m)
	}
	// Decided machines are inert and silent.
	m.Update(beep.Silent, beep.Chan1)
	if m.status != InMIS {
		t.Fatal("decided machine changed state")
	}
	if m.Emit(rng.New(1)) != beep.Silent {
		t.Fatal("decided machine beeped")
	}

	// A listener hearing the round-2 beep goes out.
	l := &jeavonsMachine{status: Active, exp: 1}
	l.Update(beep.Silent, beep.Chan1) // round 1: heard → p halves
	if l.exp != 2 || l.candidate {
		t.Fatalf("listener after round 1: %+v", l)
	}
	l.Update(beep.Silent, beep.Chan1) // round 2: dominated
	if l.status != Out {
		t.Fatalf("listener not out: %+v", l)
	}
}

func TestJeavonsProbabilityAdaptation(t *testing.T) {
	m := &jeavonsMachine{status: Active, exp: 5}
	// Silent round 1 raises p (lowers exponent).
	m.Update(beep.Silent, beep.Silent)
	if m.exp != 4 {
		t.Fatalf("exp=%d want 4", m.exp)
	}
	m.inRound2 = false
	// Heard round 1 halves p (raises exponent).
	m.Update(beep.Silent, beep.Chan1)
	if m.exp != 5 {
		t.Fatalf("exp=%d want 5", m.exp)
	}
	// Exponent floor is 1 (p <= 1/2 always).
	m2 := &jeavonsMachine{status: Active, exp: 1}
	m2.Update(beep.Silent, beep.Silent)
	if m2.exp != 1 {
		t.Fatalf("exp floor violated: %d", m2.exp)
	}
}

func TestAfekStyleConvergesFresh(t *testing.T) {
	for _, g := range testGraphs(t) {
		proto := NewAfekStyle(g.N() + 1)
		res, err := RunBeeping(g, proto, 23, 300000, false, true)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Valid {
			t.Fatalf("%s: invalid MIS", g.Name())
		}
	}
}

func TestAfekStyleSelfStabilizes(t *testing.T) {
	for _, g := range testGraphs(t) {
		proto := NewAfekStyle(g.N() + 1)
		res, err := RunBeeping(g, proto, 29, 500000, true, true)
		if err != nil {
			t.Fatalf("%s from corrupted states: %v", g.Name(), err)
		}
		if err := g.VerifyMIS(res.MIS); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}

func TestAfekStyleParamsGrowWithN(t *testing.T) {
	small := NewAfekStyle(4)
	large := NewAfekStyle(1 << 16)
	sj, sw, _ := small.afekParams()
	lj, lw, _ := large.afekParams()
	if lj <= sj || lw <= sw {
		t.Fatalf("params did not grow: (%d,%d) vs (%d,%d)", sj, sw, lj, lw)
	}
	if NewAfekStyle(0).N != 2 {
		t.Fatal("N floor missing")
	}
}

func TestAfekMachineMemberConflict(t *testing.T) {
	proto := NewAfekStyle(16)
	m := proto.NewMachine(0, graph.Path(2)).(*afekMachine)
	m.status = InMIS
	// Sustained beeping from a conflicting member forces it out of the
	// MIS within a bounded number of rounds.
	left := false
	for r := 0; r < 4*m.window+4; r++ {
		m.Update(beep.Chan1, beep.Chan1)
		if m.status != InMIS {
			left = true
			break
		}
	}
	if !left {
		t.Fatal("conflicting member never left the MIS")
	}
}

func TestAfekMachineOutRecovery(t *testing.T) {
	proto := NewAfekStyle(16)
	m := proto.NewMachine(0, graph.Path(2)).(*afekMachine)
	m.status = Out
	for r := 0; r < m.window+1; r++ {
		m.Update(beep.Silent, beep.Silent)
	}
	if m.status != Active {
		t.Fatal("out vertex with vanished dominator never recompeted")
	}
}

func TestLubyProducesValidMIS(t *testing.T) {
	for _, g := range testGraphs(t) {
		res, err := RunLuby(g, 31, 10000)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if !res.Valid {
			t.Fatalf("%s: invalid MIS from Luby", g.Name())
		}
	}
}

func TestLubyDeterministicPerSeed(t *testing.T) {
	g := graph.GNP(50, 0.1, rng.New(77))
	a, err := RunLuby(g, 5, 10000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLuby(g, 5, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds %d vs %d", a.Rounds, b.Rounds)
	}
	for v := range a.MIS {
		if a.MIS[v] != b.MIS[v] {
			t.Fatalf("MIS differs at %d", v)
		}
	}
}

func TestLubyRoundsScaleGently(t *testing.T) {
	// Luby completes K_64 quickly (one survivor per phase cascade) and
	// should never need more than a few dozen rounds on these sizes.
	for _, n := range []int{8, 64, 256} {
		res, err := RunLuby(graph.Complete(n), 3, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds > 100 {
			t.Fatalf("Luby took %d rounds on K_%d", res.Rounds, n)
		}
		if graph.CountTrue(res.MIS) != 1 {
			t.Fatalf("K_%d MIS size %d", n, graph.CountTrue(res.MIS))
		}
	}
}

func TestRunBeepingBudget(t *testing.T) {
	g := graph.Complete(10)
	_, err := RunBeeping(g, NewAfekStyle(11), 1, 1, false, true)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err=%v want ErrNotConverged", err)
	}
}

// Property: Luby always outputs a valid MIS on random graphs.
func TestLubyValidityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		g := graph.GNP(n, 0.2, rng.New(seed))
		res, err := RunLuby(g, seed, 100000)
		return err == nil && res.Valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AfekStyle self-stabilizes on small random graphs from
// arbitrary states.
func TestAfekStyleStabilizationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := graph.GNP(n, 0.25, rng.New(seed))
		res, err := RunBeeping(g, NewAfekStyle(n+1), seed, 500000, true, true)
		return err == nil && res.Valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
