package baseline

import (
	"repro/internal/graph"
	"repro/internal/msgnet"
	"repro/internal/rng"
)

// Luby is Luby's classical randomized MIS algorithm [20] on the
// synchronous message-passing substrate, in the random-priority form:
// each phase, every active vertex draws a uniform 64-bit priority and
// broadcasts it; a vertex whose priority is a strict local minimum among
// active neighbors joins the MIS; MIS vertices then announce themselves
// and their neighbors drop out. One phase costs two message rounds, and
// O(log n) phases suffice w.h.p.
//
// Luby's algorithm needs to transmit Θ(log n)-bit values, which the
// beeping model cannot do in one round — this baseline quantifies what
// the paper's algorithms give up (nothing asymptotic in rounds) for the
// exponentially weaker communication.
type Luby struct{}

var _ msgnet.Protocol = Luby{}

// Message kinds used by the protocol.
const (
	lubyKindPriority uint8 = iota + 1
	lubyKindJoined
)

// NewNode returns a fresh active node.
func (Luby) NewNode(int, *graph.Graph) msgnet.Node {
	return &lubyNode{status: Active}
}

// lubyNode is the per-vertex state: the decision and the phase parity.
type lubyNode struct {
	status   Status
	announce bool
	inRound2 bool
}

var _ Decider = (*lubyNode)(nil)

// Broadcast sends the priority in round 1 and the join announcement in
// round 2.
func (n *lubyNode) Broadcast(src *rng.Source) msgnet.Msg {
	if n.inRound2 {
		if n.announce {
			return msgnet.Msg{Kind: lubyKindJoined}
		}
		return msgnet.None
	}
	if n.status != Active {
		return msgnet.None
	}
	// Priority 0 is reserved so that None never collides with a real
	// priority; draw until nonzero (probability 2^-64 per retry).
	v := src.Uint64()
	for v == 0 {
		v = src.Uint64()
	}
	return msgnet.Msg{Kind: lubyKindPriority, Val: v}
}

// Receive applies the phase transition.
func (n *lubyNode) Receive(own msgnet.Msg, inbox []msgnet.Msg) {
	if !n.inRound2 {
		if n.status == Active && own.Kind == lubyKindPriority {
			min := true
			for _, m := range inbox {
				if m.Kind == lubyKindPriority && m.Val <= own.Val {
					min = false
					break
				}
			}
			if min {
				n.status = InMIS
				n.announce = true
			}
		}
		n.inRound2 = true
		return
	}
	if n.status == Active {
		for _, m := range inbox {
			if m.Kind == lubyKindJoined {
				n.status = Out
				break
			}
		}
	}
	n.announce = false
	n.inRound2 = false
}

// Status exposes the decision for the harness.
func (n *lubyNode) Status() Status { return n.status }
