// Package prof wires the runtime/pprof collectors to atomic file writes
// for the CLI drivers' -cpuprofile / -memprofile flags. Profiles are
// collected into memory and flushed through atomicio, so an interrupted
// run never leaves a truncated profile behind — the same durability
// contract as the checkpoint and CSV writers.
package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"

	"repro/internal/atomicio"
)

// Start begins the requested profiling and returns a finish function
// that stops the CPU profile, captures the heap profile, and writes
// both atomically. Either path may be empty (that collector is skipped);
// with both empty, Start is a no-op and finish never fails.
//
// Typical driver use, preserving the body's error:
//
//	finish, err := prof.Start(*cpuProfile, *memProfile)
//	if err != nil { return err }
//	defer func() {
//		if ferr := finish(); ferr != nil && retErr == nil { retErr = ferr }
//	}()
func Start(cpuPath, memPath string) (finish func() error, err error) {
	var cpu bytes.Buffer
	if cpuPath != "" {
		if err := pprof.StartCPUProfile(&cpu); err != nil {
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuPath != "" {
			pprof.StopCPUProfile()
			if err := atomicio.WriteFileBytes(cpuPath, cpu.Bytes()); err != nil {
				return fmt.Errorf("prof: write cpu profile: %w", err)
			}
		}
		if memPath != "" {
			runtime.GC() // materialize final heap statistics
			var mem bytes.Buffer
			if err := pprof.WriteHeapProfile(&mem); err != nil {
				return fmt.Errorf("prof: collect heap profile: %w", err)
			}
			if err := atomicio.WriteFileBytes(memPath, mem.Bytes()); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
