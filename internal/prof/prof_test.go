package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesBothProfiles checks the full collect-and-write cycle
// produces non-empty pprof files at both paths.
func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	finish, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestStartNoOp checks the empty-path fast path never touches the
// filesystem and never fails.
func TestStartNoOp(t *testing.T) {
	finish, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

// TestStartBadPath checks a write failure surfaces as an error instead
// of being dropped.
func TestStartBadPath(t *testing.T) {
	finish, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := finish(); err == nil {
		t.Fatal("want an error for an unwritable profile path")
	}
}
