// Package famspec parses compact graph-family specifications of the
// form "family:arg1:arg2" used by the command-line tools, e.g.
// "cycle:64", "gnp:256:0.05", "grid:8:8", "ba:500:2", "udg:200:0.1".
package famspec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Help is the usage text listing supported specifications.
const Help = `graph family specs:
  empty:N            N isolated vertices
  path:N             path on N vertices
  cycle:N            cycle on N vertices
  complete:N         complete graph K_N
  star:N             star K_{1,N-1}
  bipartite:A:B      complete bipartite K_{A,B}
  grid:R:C           R x C grid
  torus:R:C          R x C torus
  bintree:N          complete binary tree
  hypercube:D        D-dimensional hypercube (2^D vertices)
  caterpillar:N      caterpillar tree
  lollipop:N:K       K-clique plus a path, N vertices total
  cliquechain:K:S    K cliques of size S in a chain
  gnp:N:P            Erdős–Rényi G(N, P)
  gnpavg:N:D         G(N, p) with expected average degree D
  regular:N:D        random D-regular graph
  ba:N:M             preferential attachment, M edges per vertex
  udg:N:R            unit-disk graph, N points, radius R`

// Parse builds the graph described by spec, using src for the random
// families.
func Parse(spec string, src *rng.Source) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	args := parts[1:]

	intArg := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("famspec: %s needs at least %d arguments", name, i+1)
		}
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("famspec: %s argument %d: %w", name, i+1, err)
		}
		return v, nil
	}
	floatArg := func(i int) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("famspec: %s needs at least %d arguments", name, i+1)
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return 0, fmt.Errorf("famspec: %s argument %d: %w", name, i+1, err)
		}
		return v, nil
	}

	oneInt := func(build func(int) *graph.Graph) (*graph.Graph, error) {
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("famspec: negative size %d", n)
		}
		return build(n), nil
	}
	twoInt := func(build func(a, b int) *graph.Graph) (*graph.Graph, error) {
		a, err := intArg(0)
		if err != nil {
			return nil, err
		}
		b, err := intArg(1)
		if err != nil {
			return nil, err
		}
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("famspec: negative argument")
		}
		return build(a, b), nil
	}

	switch name {
	case "empty":
		return oneInt(graph.Empty)
	case "path":
		return oneInt(graph.Path)
	case "cycle":
		return oneInt(graph.Cycle)
	case "complete":
		return oneInt(graph.Complete)
	case "star":
		return oneInt(graph.Star)
	case "bintree":
		return oneInt(graph.BinaryTree)
	case "hypercube":
		return oneInt(graph.Hypercube)
	case "caterpillar":
		return oneInt(graph.Caterpillar)
	case "bipartite":
		return twoInt(graph.CompleteBipartite)
	case "grid":
		return twoInt(graph.Grid)
	case "torus":
		return twoInt(graph.Torus)
	case "lollipop":
		return twoInt(graph.Lollipop)
	case "cliquechain":
		return twoInt(graph.CliqueChain)
	case "gnp":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		p, err := floatArg(1)
		if err != nil {
			return nil, err
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("famspec: gnp probability %v out of [0,1]", p)
		}
		return graph.GNP(n, p, src), nil
	case "gnpavg":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		d, err := floatArg(1)
		if err != nil {
			return nil, err
		}
		return graph.GNPAvgDegree(n, d, src), nil
	case "regular":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		d, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegular(n, d, src)
	case "ba":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		m, err := intArg(1)
		if err != nil {
			return nil, err
		}
		return graph.PreferentialAttachment(n, m, src), nil
	case "udg":
		n, err := intArg(0)
		if err != nil {
			return nil, err
		}
		r, err := floatArg(1)
		if err != nil {
			return nil, err
		}
		return graph.UnitDisk(n, r, src), nil
	default:
		return nil, fmt.Errorf("famspec: unknown family %q\n%s", name, Help)
	}
}
