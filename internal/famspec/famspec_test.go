package famspec

import (
	"testing"

	"repro/internal/rng"
)

func TestParseAllFamilies(t *testing.T) {
	src := rng.New(1)
	specs := map[string]int{ // spec → expected N (-1 = don't check)
		"empty:5":         5,
		"path:6":          6,
		"cycle:7":         7,
		"complete:5":      5,
		"star:8":          8,
		"bintree:15":      15,
		"hypercube:4":     16,
		"caterpillar:10":  10,
		"bipartite:3:4":   7,
		"grid:3:4":        12,
		"torus:3:5":       15,
		"lollipop:12:5":   12,
		"cliquechain:3:4": 12,
		"gnp:20:0.3":      20,
		"gnpavg:30:4":     30,
		"regular:20:4":    20,
		"ba:25:2":         25,
		"udg:30:0.3":      30,
	}
	for spec, wantN := range specs {
		g, err := Parse(spec, src)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if wantN >= 0 && g.N() != wantN {
			t.Errorf("%s: N=%d want %d", spec, g.N(), wantN)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	src := rng.New(1)
	for _, spec := range []string{
		"nosuch:5",
		"cycle",       // missing arg
		"cycle:x",     // non-numeric
		"gnp:10",      // missing p
		"gnp:10:1.5",  // p out of range
		"grid:3",      // missing dimension
		"regular:5:3", // odd n*d
		"path:-2",     // negative
		"bipartite:-1:3",
	} {
		if _, err := Parse(spec, src); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
}
