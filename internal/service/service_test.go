package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/stab"
)

// testDaemon starts a daemon on an ephemeral port over a fresh data
// directory and tears it down with the test.
func testDaemon(t *testing.T, mutate func(*Config)) (*Daemon, string) {
	t.Helper()
	cfg := Config{
		DataDir:      t.TempDir(),
		Addr:         "127.0.0.1:0",
		Workers:      2,
		QueueDepth:   8,
		DrainTimeout: 30 * time.Second,
		Logf:         t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { d.Shutdown(context.Background()) })
	return d, "http://" + d.Addr()
}

func submitJob(t *testing.T, base string, spec JobSpec) *Job {
	t.Helper()
	j, status := trySubmit(t, base, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, job %+v", status, j)
	}
	return j
}

func trySubmit(t *testing.T, base string, spec JobSpec) (*Job, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return &j, resp.StatusCode
}

func getJob(t *testing.T, base, id string) *Job {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode job: %v", err)
	}
	return &j
}

func waitState(t *testing.T, base, id string, want func(JobState) bool, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j := getJob(t, base, id)
		if want(j.State) {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j := getJob(t, base, id)
	t.Fatalf("job %s stuck in state %s (error %q)", id, j.State, j.Error)
	return nil
}

func fetchEvents(t *testing.T, base, id string, after int) []Event {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", base, id, after))
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events %s: status %d", id, resp.StatusCode)
	}
	var out []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, e)
	}
	return out
}

// roundHashes extracts the (round → hash) trace from an event stream.
func roundHashes(events []Event) map[int]string {
	m := make(map[int]string)
	for _, e := range events {
		if e.Type == "round" {
			m[e.Round] = e.Hash
		}
	}
	return m
}

func TestSubmitRunsToDone(t *testing.T) {
	_, base := testDaemon(t, nil)
	j := submitJob(t, base, JobSpec{Family: "gnp:64:0.08", Seed: 11, CheckpointEvery: 8})
	final := waitState(t, base, j.ID, JobState.Terminal, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("state %s (error %q), want done", final.State, final.Error)
	}
	if !final.Stabilized || final.MISSize == 0 || final.Rounds == 0 {
		t.Fatalf("implausible outcome: %+v", final)
	}
	events := fetchEvents(t, base, j.ID, 0)
	if len(events) != final.Rounds+1 {
		t.Fatalf("got %d events for %d rounds", len(events), final.Rounds)
	}
	for i, e := range events[:len(events)-1] {
		if e.Type != "round" || e.Round != i+1 || len(e.Hash) != 16 {
			t.Fatalf("event %d malformed: %+v", i, e)
		}
		if e.Active < 0 || e.Active > 64 || e.FrontierWords < 0 || e.FrontierWords > 1 {
			t.Fatalf("event %d activity out of range for n=64: %+v", i, e)
		}
	}
	// Round 1 always processes the full randomized configuration.
	if events[0].Active == 0 || events[0].FrontierWords == 0 {
		t.Fatalf("first round reports no activity: %+v", events[0])
	}
	done := events[len(events)-1]
	if done.Type != "done" || done.State != JobDone || done.ID != final.Rounds+1 {
		t.Fatalf("bad done event: %+v", done)
	}
}

func TestSpecRejectedWith400(t *testing.T) {
	_, base := testDaemon(t, nil)
	for _, spec := range []JobSpec{
		{Seed: 1},                                        // no family
		{Family: "gnp:64:0.08", Alg: "nope"},             // unknown protocol
		{Family: "gnp:64:0.08", Noise: 1.5},              // bad noise
		{Family: "gnp:64:0.08", Rounds: 5, MaxRounds: 5}, // exclusive modes
	} {
		if _, status := trySubmit(t, base, spec); status != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", spec, status)
		}
	}
	// A bad family fails the JOB (resolution is lazy), not the submit.
	j := submitJob(t, base, JobSpec{Family: "gnp:notanumber:0.1", Seed: 1})
	final := waitState(t, base, j.ID, JobState.Terminal, 10*time.Second)
	if final.State != JobFailed || final.Error == "" {
		t.Fatalf("bad family: state %s error %q, want failed with diagnostic", final.State, final.Error)
	}
}

// TestQueueSaturation exercises admission control: with one worker and
// a queue of two, the third concurrent submission bounces with 429 and
// a Retry-After hint — and the running job is not perturbed (it
// completes with the same per-round trace as an unloaded run).
func TestQueueSaturation(t *testing.T) {
	refSpec := JobSpec{Family: "gnp:48:0.1", Seed: 7, Rounds: 400, CheckpointEvery: 16}

	_, refBase := testDaemon(t, nil)
	ref := submitJob(t, refBase, refSpec)
	refFinal := waitState(t, refBase, ref.ID, JobState.Terminal, 30*time.Second)
	refTrace := roundHashes(fetchEvents(t, refBase, ref.ID, 0))

	_, base := testDaemon(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 2
	})
	// Occupy the single worker with a paced job, then fill the queue.
	slow := JobSpec{Family: "gnp:48:0.1", Seed: 7, Rounds: 400, CheckpointEvery: 16, RoundDelayMS: 2}
	running := submitJob(t, base, slow)
	waitState(t, base, running.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)
	q1 := submitJob(t, base, slow)
	q2 := submitJob(t, base, slow)

	body, _ := json.Marshal(slow)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 without Retry-After")
	}

	// The in-flight job finishes unperturbed and bit-exact.
	final := waitState(t, base, running.ID, JobState.Terminal, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("running job perturbed: state %s error %q", final.State, final.Error)
	}
	if final.Rounds != refFinal.Rounds {
		t.Fatalf("rounds %d != reference %d", final.Rounds, refFinal.Rounds)
	}
	gotTrace := roundHashes(fetchEvents(t, base, running.ID, 0))
	if len(gotTrace) != len(refTrace) {
		t.Fatalf("trace length %d != reference %d", len(gotTrace), len(refTrace))
	}
	for r, h := range refTrace {
		if gotTrace[r] != h {
			t.Fatalf("round %d hash %s != reference %s under load", r, gotTrace[r], h)
		}
	}
	// Freed slots drain the queue.
	waitState(t, base, q1.ID, JobState.Terminal, 60*time.Second)
	waitState(t, base, q2.ID, JobState.Terminal, 60*time.Second)
}

func TestTenantQueueBound(t *testing.T) {
	_, base := testDaemon(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 8
		c.TenantQueueDepth = 1
	})
	slow := JobSpec{Family: "gnp:32:0.15", Seed: 3, Rounds: 2000, RoundDelayMS: 2, Tenant: "greedy"}
	running := submitJob(t, base, slow)
	waitState(t, base, running.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)
	submitJob(t, base, slow) // fills greedy's quota of 1
	if _, status := trySubmit(t, base, slow); status != http.StatusTooManyRequests {
		t.Fatalf("tenant over quota: status %d, want 429", status)
	}
	other := slow
	other.Tenant = "polite"
	if _, status := trySubmit(t, base, other); status != http.StatusAccepted {
		t.Fatalf("other tenant rejected: status %d", status)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	_, base := testDaemon(t, func(c *Config) { c.Workers = 1 })
	slow := JobSpec{Family: "gnp:32:0.15", Seed: 5, Rounds: 5000, RoundDelayMS: 2, CheckpointEvery: 8}
	running := submitJob(t, base, slow)
	waitState(t, base, running.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)
	queued := submitJob(t, base, slow)

	// Cancel the pending job: immediate, never runs.
	resp, err := http.Post(base+"/v1/jobs/"+queued.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel pending: status %d", resp.StatusCode)
	}
	if j := getJob(t, base, queued.ID); j.State != JobCanceled {
		t.Fatalf("pending job state %s, want canceled", j.State)
	}

	// Cancel the running job: cooperative, checkpoints first.
	resp, err = http.Post(base+"/v1/jobs/"+running.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	final := waitState(t, base, running.ID, JobState.Terminal, 10*time.Second)
	if final.State != JobCanceled {
		t.Fatalf("running job state %s, want canceled", final.State)
	}
	// A second cancel is a 409.
	resp, err = http.Post(base+"/v1/jobs/"+running.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: status %d, want 409", resp.StatusCode)
	}
	// The canceled job's stream ends with a done event naming the state.
	events := fetchEvents(t, base, running.ID, 0)
	if len(events) == 0 || events[len(events)-1].Type != "done" || events[len(events)-1].State != JobCanceled {
		t.Fatalf("canceled job stream does not end in canceled done event")
	}
}

// TestDrainInterruptsAndResumes is the graceful half of the crash
// story: SIGTERM-style Shutdown checkpoints the in-flight job and parks
// it interrupted; a new daemon over the same directory resumes it to a
// trace bit-identical to an uninterrupted reference run.
func TestDrainInterruptsAndResumes(t *testing.T) {
	spec := JobSpec{Family: "gnp:48:0.1", Seed: 9, Rounds: 600, CheckpointEvery: 8}

	_, refBase := testDaemon(t, nil)
	ref := submitJob(t, refBase, spec)
	refFinal := waitState(t, refBase, ref.ID, JobState.Terminal, 30*time.Second)
	refEvents := fetchEvents(t, refBase, ref.ID, 0)
	refTrace := roundHashes(refEvents)

	// Durability observability: the job record carries cumulative
	// checkpoint bytes, the round events carry per-checkpoint kind,
	// size and duration, and the daemon's healthz totals them.
	if refFinal.Checkpoints == 0 || refFinal.CheckpointBytes <= 0 {
		t.Fatalf("reference job reports checkpoints=%d bytes=%d", refFinal.Checkpoints, refFinal.CheckpointBytes)
	}
	ckptEvents, sawBase := 0, false
	for _, e := range refEvents {
		if e.CkptKind == "" {
			continue
		}
		ckptEvents++
		if e.CkptKind == "base" {
			sawBase = true
		}
		if e.CkptBytes <= 0 || e.CkptNS <= 0 {
			t.Fatalf("checkpoint event %+v missing bytes or duration", e)
		}
	}
	if ckptEvents == 0 || !sawBase {
		t.Fatalf("round events carry %d checkpoint annotations (base seen: %v)", ckptEvents, sawBase)
	}
	var health struct {
		CheckpointBytes int64 `json:"checkpointBytes"`
	}
	resp, err := http.Get(refBase + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	if health.CheckpointBytes < refFinal.CheckpointBytes {
		t.Fatalf("healthz checkpointBytes %d < job's %d", health.CheckpointBytes, refFinal.CheckpointBytes)
	}

	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1, DrainTimeout: 30 * time.Second, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + d1.Addr()
	paced := spec
	paced.RoundDelayMS = 2 // slow enough to catch mid-run
	j := submitJob(t, base, paced)
	waitState(t, base, j.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)
	time.Sleep(100 * time.Millisecond) // let some rounds accumulate
	if err := d1.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	onDisk, err := st.LoadJob(j.ID)
	if err != nil {
		t.Fatalf("LoadJob: %v", err)
	}
	if onDisk.State != JobInterrupted {
		t.Fatalf("drained job state %s, want interrupted", onDisk.State)
	}
	cp, err := stab.ReadCheckpointFile(st.CheckpointPath(j.ID))
	if err != nil {
		t.Fatalf("drain checkpoint invalid: %v", err)
	}
	if cp.Round == 0 || cp.Round >= 600 {
		t.Fatalf("drain checkpoint at round %d, want mid-run", cp.Round)
	}

	// Second life: recovery re-queues and resumes.
	d2, err := New(cfg)
	if err != nil {
		t.Fatalf("New (resume): %v", err)
	}
	if err := d2.Start(); err != nil {
		t.Fatalf("Start (resume): %v", err)
	}
	defer d2.Shutdown(context.Background())
	base2 := "http://" + d2.Addr()
	final := waitState(t, base2, j.ID, JobState.Terminal, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("resumed job state %s (error %q)", final.State, final.Error)
	}
	if !final.Resumed {
		t.Fatalf("resumed job does not report Resumed")
	}
	if final.Rounds != refFinal.Rounds {
		t.Fatalf("resumed rounds %d != reference %d", final.Rounds, refFinal.Rounds)
	}
	gotTrace := roundHashes(fetchEvents(t, base2, j.ID, 0))
	if len(gotTrace) != len(refTrace) {
		t.Fatalf("resumed trace has %d rounds, reference %d", len(gotTrace), len(refTrace))
	}
	for r, h := range refTrace {
		if gotTrace[r] != h {
			t.Fatalf("round %d: resumed hash %s != reference %s", r, gotTrace[r], h)
		}
	}
}

// TestRecoveryRejectsTamperedCheckpoint is the integrity half: a
// checkpoint corrupted on disk moves the job to failed with the
// validation diagnostic — the daemon neither crashes nor resumes from
// unverifiable state, and keeps serving other jobs.
func TestRecoveryRejectsTamperedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1, DrainTimeout: 30 * time.Second, Logf: t.Logf}
	d1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d1.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	base := "http://" + d1.Addr()
	j := submitJob(t, base, JobSpec{Family: "gnp:48:0.1", Seed: 13, Rounds: 2000, RoundDelayMS: 2, CheckpointEvery: 8})
	waitState(t, base, j.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)
	time.Sleep(100 * time.Millisecond)
	if err := d1.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	st, _ := OpenStore(dir)
	cpPath := st.CheckpointPath(j.ID)
	data, err := os.ReadFile(cpPath)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	data[len(data)/2] ^= 0xff // flip a byte mid-payload
	if err := os.WriteFile(cpPath, data, 0o644); err != nil {
		t.Fatalf("tamper: %v", err)
	}

	d2, err := New(cfg)
	if err != nil {
		t.Fatalf("New over tampered store: %v", err)
	}
	if err := d2.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d2.Shutdown(context.Background())
	base2 := "http://" + d2.Addr()

	failed := getJob(t, base2, j.ID)
	if failed.State != JobFailed {
		t.Fatalf("tampered job state %s, want failed", failed.State)
	}
	if !strings.Contains(failed.Error, "checkpoint rejected") {
		t.Fatalf("tampered job diagnostic %q lacks checkpoint rejection", failed.Error)
	}

	// The daemon still serves: a fresh job completes.
	ok := submitJob(t, base2, JobSpec{Family: "gnp:32:0.15", Seed: 2, CheckpointEvery: 8})
	final := waitState(t, base2, ok.ID, JobState.Terminal, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("fresh job after tampered recovery: state %s error %q", final.State, final.Error)
	}
}

// TestRecoveryQuarantinesTornJobRecord: a half-written job.json (torn
// write simulation) is quarantined with a diagnostic instead of
// crashing the daemon.
func TestRecoveryQuarantinesTornJobRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	jdir := st.JobDir("j000001")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jdir+"/job.json", []byte(`{"id":"j000001","sta`), 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := New(Config{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New over torn record: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d.Shutdown(context.Background())
	j, ok := d.Get("j000001")
	if !ok || j.State != JobFailed || !strings.Contains(j.Error, "recovery") {
		t.Fatalf("torn record: got %+v", j)
	}
	if _, err := os.Stat(jdir + "/job.json.bad"); err != nil {
		t.Fatalf("torn record not quarantined: %v", err)
	}
}

// TestEventStreamResume verifies Last-Event-ID / ?after semantics on
// both framings: a reconnect after N sees exactly the events past N.
func TestEventStreamResume(t *testing.T) {
	_, base := testDaemon(t, nil)
	j := submitJob(t, base, JobSpec{Family: "gnp:48:0.1", Seed: 21, Rounds: 120, CheckpointEvery: 8})
	final := waitState(t, base, j.ID, JobState.Terminal, 30*time.Second)
	if final.State != JobDone {
		t.Fatalf("state %s", final.State)
	}

	all := fetchEvents(t, base, j.ID, 0)
	if len(all) != 121 { // 120 rounds + done
		t.Fatalf("got %d events, want 121", len(all))
	}
	tail := fetchEvents(t, base, j.ID, 100)
	if len(tail) != 21 || tail[0].ID != 101 {
		t.Fatalf("after=100: got %d events starting at %d", len(tail), tail[0].ID)
	}

	// Last-Event-ID header (SSE-style resume) on the NDJSON framing.
	req, _ := http.NewRequest("GET", base+"/v1/jobs/"+j.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "118")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 { // rounds 119, 120, done(121)
		t.Fatalf("Last-Event-ID=118: %d lines: %q", len(lines), string(body))
	}

	// SSE framing carries id: and event: fields.
	req, _ = http.NewRequest("GET", base+"/v1/jobs/"+j.ID+"/events?after=119", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET SSE: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	sse, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(sse), "id: 120\n") || !strings.Contains(string(sse), "event: done\n") {
		t.Fatalf("SSE body lacks expected frames:\n%s", sse)
	}
}

// TestLiveStreamFollowsToDone subscribes while the job is running and
// must observe a gapless, monotone stream ending in the done event.
func TestLiveStreamFollowsToDone(t *testing.T) {
	_, base := testDaemon(t, nil)
	j := submitJob(t, base, JobSpec{Family: "gnp:48:0.1", Seed: 31, Rounds: 300, RoundDelayMS: 1, CheckpointEvery: 8})
	waitState(t, base, j.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)

	resp, err := http.Get(base + "/v1/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	last, sawDone := 0, false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if e.ID != last+1 {
			t.Fatalf("stream gap: %d after %d", e.ID, last)
		}
		last = e.ID
		if e.Type == "done" {
			sawDone = true
			if e.State != JobDone {
				t.Fatalf("done state %s", e.State)
			}
		}
	}
	if !sawDone || last != 301 {
		t.Fatalf("stream ended at id %d (done=%v), want 301", last, sawDone)
	}
}

// TestHealthzReportsLoad pins the operator view: with one worker busy
// and two jobs queued under distinct tenants, /v1/healthz must report
// the running-job count, total queue depth, and the per-tenant backlog
// (eliding tenants whose share is zero).
func TestHealthzReportsLoad(t *testing.T) {
	_, base := testDaemon(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 8
	})
	slow := JobSpec{Family: "gnp:32:0.15", Seed: 3, Rounds: 2000, RoundDelayMS: 2, Tenant: "alpha"}
	running := submitJob(t, base, slow)
	waitState(t, base, running.ID, func(s JobState) bool { return s == JobRunning }, 10*time.Second)
	submitJob(t, base, slow) // queued under alpha
	beta := slow
	beta.Tenant = "beta"
	submitJob(t, base, beta) // queued under beta

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		OK            bool           `json:"ok"`
		Draining      bool           `json:"draining"`
		Queued        int            `json:"queued"`
		Jobs          int            `json:"jobs"`
		Running       int            `json:"running"`
		TenantBacklog map[string]int `json:"tenantBacklog"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if !h.OK || h.Draining {
		t.Fatalf("healthz flags: %+v", h)
	}
	if h.Running != 1 {
		t.Fatalf("running %d, want 1", h.Running)
	}
	if h.Queued != 2 {
		t.Fatalf("queued %d, want 2", h.Queued)
	}
	if h.Jobs != 3 {
		t.Fatalf("jobs %d, want 3", h.Jobs)
	}
	want := map[string]int{"alpha": 1, "beta": 1}
	if len(h.TenantBacklog) != len(want) {
		t.Fatalf("tenant backlog %v, want %v", h.TenantBacklog, want)
	}
	for tenant, n := range want {
		if h.TenantBacklog[tenant] != n {
			t.Fatalf("tenant %s backlog %d, want %d", tenant, h.TenantBacklog[tenant], n)
		}
	}
}
