package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// API errors surfaced by Submit/Cancel, mapped onto HTTP statuses by
// the handlers.
var (
	errDraining   = errors.New("service: draining, not accepting jobs")
	errUnknownJob = errors.New("service: no such job")
)

// queueFullError is the admission-control rejection: it carries the
// Retry-After hint handed to the client.
type queueFullError struct {
	scope      string
	retryAfter int
}

func (e *queueFullError) Error() string {
	return fmt.Sprintf("service: queue full (%s), retry in ~%ds", e.scope, e.retryAfter)
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// maxSubmitBytes bounds a job submission body; a spec is a few hundred
// bytes, so 1 MiB is generous and still starves memory-exhaustion
// attempts.
const maxSubmitBytes = 1 << 20

// routes builds the API mux:
//
//	POST   /v1/jobs              submit        202 | 400 | 429 | 503
//	GET    /v1/jobs              list          (?tenant=, ?state=)
//	GET    /v1/jobs/{id}         inspect       200 | 404
//	POST   /v1/jobs/{id}/cancel  cancel        200 | 404 | 409
//	DELETE /v1/jobs/{id}         cancel alias
//	GET    /v1/jobs/{id}/events  stream        NDJSON, or SSE with
//	                                           Accept: text/event-stream
//	                                           (resume: Last-Event-ID /
//	                                           ?after=N)
//	GET    /v1/healthz           liveness
func (d *Daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", d.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", d.handleCancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", d.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("GET /v1/healthz", d.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	j, err := d.Submit(spec)
	if err != nil {
		var full *queueFullError
		switch {
		case errors.As(err, &full):
			w.Header().Set("Retry-After", strconv.Itoa(full.retryAfter))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, errDraining):
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

func (d *Daemon) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := d.List(r.URL.Query().Get("tenant"), JobState(r.URL.Query().Get("state")))
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (d *Daemon) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := d.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, changed, err := d.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	if !changed {
		writeErr(w, http.StatusConflict, "job %s is already %s", j.ID, j.State)
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	d.mu.Lock()
	running := 0
	for _, j := range d.jobs {
		if j.State == JobRunning {
			running++
		}
	}
	// Per-tenant backlog: the admission-counted queue shares, so an
	// operator can see which tenant is saturating its depth limit
	// without walking the job list. Zero-share tenants are elided.
	backlog := make(map[string]int, len(d.queued))
	for tenant, n := range d.queued {
		if n > 0 {
			backlog[tenant] = n
		}
	}
	status := map[string]any{
		"ok":              true,
		"draining":        d.draining,
		"queued":          len(d.pending),
		"jobs":            len(d.jobs),
		"running":         running,
		"tenantBacklog":   backlog,
		"checkpointBytes": d.ckptBytes.Load(),
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

// handleEvents streams a job's per-round events. The default framing is
// NDJSON (one Event per line); SSE is selected by Accept:
// text/event-stream or ?format=sse. Both honor resume: Last-Event-ID
// (SSE standard) or ?after=N skip everything already seen, and because
// executions are bit-exact across crashes, an ID observed once never
// changes meaning.
//
// For a live job the subscription is atomic (replay + follow, no gap);
// for a terminal job the durable log is streamed and the connection
// closes after the done event.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := d.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			after = n
		}
	}
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad after=%q", v)
			return
		}
		after = n
	}
	sse := r.URL.Query().Get("format") == "sse" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	tracePath := d.store.TracePath(id)
	replay := func(after int) ([]Event, error) { return readTraceEvents(tracePath, after) }
	events, live, unsubscribe, err := d.hub.subscribe(id, after, replay)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "read trace: %v", err)
		return
	}
	defer unsubscribe()

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	writeFrame := func(line []byte) bool {
		if sse {
			var e Event
			if err := json.Unmarshal(line, &e); err != nil {
				return false
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n",
				e.ID, e.Type, strings.TrimRight(string(line), "\n")); err != nil {
				return false
			}
		} else {
			if _, err := w.Write(line); err != nil {
				return false
			}
		}
		flush()
		return true
	}

	seen := after
	for i := range events {
		if !writeFrame(events[i].encode()) {
			return
		}
		seen = events[i].ID
	}
	if live == nil {
		return // terminal job: the durable log is the whole story
	}
	for {
		select {
		case line, ok := <-live:
			if !ok {
				// Topic closed: the job reached a terminal state (its
				// done event was published before teardown), or this
				// subscriber lagged. Either way the durable log has
				// anything missed; drain it and end the stream.
				tail, err := readTraceEvents(tracePath, seen)
				if err == nil {
					for i := range tail {
						if !writeFrame(tail[i].encode()) {
							return
						}
					}
				}
				return
			}
			var e Event
			if err := json.Unmarshal(line, &e); err == nil {
				if e.ID <= seen {
					continue // duplicate of the replayed prefix
				}
				seen = e.ID
			}
			if !writeFrame(line) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
