package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/atomicio"
)

// Store is the on-disk layout of the daemon's state:
//
//	<data>/jobs/<id>/job.json        job record (atomic replace)
//	<data>/jobs/<id>/checkpoint.ck   latest integrity-hashed checkpoint
//	<data>/jobs/<id>/trace.ndjson    per-round event log (append; fsynced
//	                                 before each checkpoint write)
//	<data>/beepd.addr                actual listen address, for tooling
//
// Every mutation of job.json goes through atomicio, so a SIGKILL at any
// instant leaves either the old record or the new one — the startup
// scan never has to guess about a half-written transition. The trace
// file is the one append-mode file; its torn tail is truncated against
// the checkpoint on resume.
type Store struct {
	dir string
	seq int
}

const (
	jobFileName        = "job.json"
	checkpointFileName = "checkpoint.ck"
	traceFileName      = "trace.ndjson"
	addrFileName       = "beepd.addr"
)

// OpenStore creates (or reopens) the data directory and seeds the job
// ID counter past every existing job.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: empty data directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Store{dir: dir}
	ids, err := s.jobIDs()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if n, ok := parseJobID(id); ok && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

// AddrFile is the path the daemon publishes its actual listen address
// to, so tests and tooling can find a daemon started with ":0".
func (s *Store) AddrFile() string { return filepath.Join(s.dir, addrFileName) }

// JobDir returns the directory of one job.
func (s *Store) JobDir(id string) string { return filepath.Join(s.dir, "jobs", id) }

// CheckpointPath returns the job's checkpoint file path.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.JobDir(id), checkpointFileName)
}

// TracePath returns the job's per-round event log path.
func (s *Store) TracePath(id string) string {
	return filepath.Join(s.JobDir(id), traceFileName)
}

// NextID allocates the next job ID. Not safe for concurrent use; the
// daemon serializes allocation under its own lock.
func (s *Store) NextID() string {
	s.seq++
	return fmt.Sprintf("j%06d", s.seq)
}

func parseJobID(id string) (int, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, "j"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// jobIDs lists existing job directories in ID order.
func (s *Store) jobIDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("service: scan jobs: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// SaveJob atomically persists the job record, creating the job
// directory if needed.
func (s *Store) SaveJob(j *Job) error {
	dir := s.JobDir(j.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode job %s: %w", j.ID, err)
	}
	if err := atomicio.WriteFileBytes(filepath.Join(dir, jobFileName), data); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	return nil
}

// LoadJob reads one job record.
func (s *Store) LoadJob(id string) (*Job, error) {
	data, err := os.ReadFile(filepath.Join(s.JobDir(id), jobFileName))
	if err != nil {
		return nil, fmt.Errorf("service: job %s: %w", id, err)
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("service: job %s: malformed job.json: %w", id, err)
	}
	if j.ID == "" {
		j.ID = id
	}
	if j.ID != id {
		return nil, fmt.Errorf("service: job %s: job.json claims id %q", id, j.ID)
	}
	return &j, nil
}

// WriteAddrFile publishes the daemon's actual listen address.
func (s *Store) WriteAddrFile(addr string) error {
	return atomicio.WriteFileBytes(s.AddrFile(), []byte(addr+"\n"))
}
