package service

import "sync"

// hub fans each running job's event stream out to its live subscribers.
// The replay-then-follow handoff is atomic under the hub lock: a
// subscriber first receives every event already on disk (the topic's
// flush callback makes the trace file current before the read), then
// its channel, registered under the same critical section, receives
// everything after — no event can fall between the two.
//
// Slow subscribers are disconnected rather than buffered without bound
// (the admission-control stance applied to streaming): their channel is
// closed, and the client reconnects with Last-Event-ID to resume from
// the durable log.
type hub struct {
	mu     sync.Mutex
	topics map[string]*topic
}

type topic struct {
	subs   map[chan []byte]struct{}
	lastID int
	// flush forces the runner's buffered trace writer to disk (without
	// fsync) so a replay read observes every published event.
	flush func() error
}

const subscriberBuffer = 256

func newHub() *hub {
	return &hub{topics: make(map[string]*topic)}
}

// open registers a running job's topic. flush may be nil.
func (h *hub) open(jobID string, lastID int, flush func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.topics[jobID] = &topic{
		subs:   make(map[chan []byte]struct{}),
		lastID: lastID,
		flush:  flush,
	}
}

// publish delivers one encoded event line to the job's subscribers.
// The line must not be mutated afterwards.
func (h *hub) publish(jobID string, eventID int, line []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[jobID]
	if t == nil {
		return
	}
	t.lastID = eventID
	for ch := range t.subs {
		select {
		case ch <- line:
		default:
			// Lagging subscriber: disconnect, it resumes from the log.
			delete(t.subs, ch)
			close(ch)
		}
	}
}

// lastID reports the job's latest published event ID, and whether the
// job currently streams live.
func (h *hub) last(jobID string) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[jobID]
	if t == nil {
		return 0, false
	}
	return t.lastID, true
}

// closeTopic tears a finished job's topic down, closing every
// subscriber channel (the handler then observes the terminal state).
func (h *hub) closeTopic(jobID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[jobID]
	if t == nil {
		return
	}
	delete(h.topics, jobID)
	for ch := range t.subs {
		close(ch)
	}
}

// closeAll tears every topic down (daemon shutdown).
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, t := range h.topics {
		delete(h.topics, id)
		for ch := range t.subs {
			close(ch)
		}
	}
}

// subscribe atomically replays the job's durable events after `after`
// and registers a live channel. When the job has no live topic the
// channel is nil and the replayed slice is complete as of the read.
func (h *hub) subscribe(jobID string, after int, replay func(after int) ([]Event, error)) ([]Event, chan []byte, func(), error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.topics[jobID]
	if t != nil && t.flush != nil {
		if err := t.flush(); err != nil {
			return nil, nil, nil, err
		}
	}
	events, err := replay(after)
	if err != nil {
		return nil, nil, nil, err
	}
	if t == nil {
		return events, nil, func() {}, nil
	}
	ch := make(chan []byte, subscriberBuffer)
	t.subs[ch] = struct{}{}
	cancel := func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		// The topic may have been closed (and the channel with it)
		// between the subscriber's exit and this cancel.
		if cur := h.topics[jobID]; cur == t {
			if _, ok := t.subs[ch]; ok {
				delete(t.subs, ch)
				close(ch)
			}
		}
	}
	return events, ch, cancel, nil
}
