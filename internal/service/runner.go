package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/beep"
	"repro/internal/stab"
)

// Cancellation causes, attached via context.WithCancelCause so the
// supervisor's ErrCanceled can be mapped back to the reason the run
// stopped.
var (
	// errDrain stops a run because the daemon is shutting down; the job
	// is checkpointed and left interrupted, to resume on next startup.
	errDrain = errors.New("daemon draining")
	// errClientCancel stops a run because a client asked; the job ends
	// canceled (terminal).
	errClientCancel = errors.New("canceled by client")
)

// runJob executes one job on a worker goroutine: resolve the spec,
// resume from the latest valid checkpoint (or start fresh), stream
// per-round events through the trace log and the hub, and map the
// supervisor's outcome onto the job state machine. It never panics the
// daemon: every failure path lands the job in a terminal state with a
// diagnostic.
func (d *Daemon) runJob(ctx context.Context, j *Job) {
	d.transition(j, func(j *Job) { j.State = JobRunning })

	g, proto, initMode, engine, err := j.Spec.resolve()
	if err != nil {
		d.finishFailed(j, nil, 0, fmt.Sprintf("resolve spec: %v", err))
		return
	}

	// Resume path: a checkpoint on disk means an earlier run got that
	// far. It was validated by the startup scan (or written by this
	// process), but re-validate here — the read includes the integrity
	// check, and a checkpoint that went bad between scan and run must
	// fail loudly, not resume silently from garbage.
	cpPath := d.store.CheckpointPath(j.ID)
	var resume *beep.Checkpoint
	if _, statErr := os.Stat(cpPath); statErr == nil {
		cp, err := stab.ReadCheckpointFile(cpPath)
		if err != nil {
			d.finishFailed(j, nil, 0, fmt.Sprintf("checkpoint rejected: %v", err))
			return
		}
		resume = cp
	}

	// Reconcile the trace with the resume point: keep rounds ≤ the
	// checkpoint (0 for a fresh start wipes everything), clearing any
	// torn tail a crash left behind.
	resumeRound := 0
	if resume != nil {
		resumeRound = resume.Round
	}
	tracePath := d.store.TracePath(j.ID)
	if err := truncateTrace(tracePath, resumeRound); err != nil {
		d.finishFailed(j, nil, resumeRound, fmt.Sprintf("reconcile trace: %v", err))
		return
	}
	tw, err := openTraceWriter(tracePath)
	if err != nil {
		d.finishFailed(j, nil, resumeRound, fmt.Sprintf("open trace: %v", err))
		return
	}

	// Per-job cancellation: the drain signal, a client cancel, and a
	// trace-write failure all funnel through this context's cause. The
	// supervisor checks it between rounds and checkpoints before
	// stopping.
	runCtx, cancelRun := context.WithCancelCause(ctx)
	defer cancelRun(nil)
	d.registerCancel(j.ID, cancelRun)
	defer d.unregisterCancel(j.ID)

	d.hub.open(j.ID, resumeRound, tw.Flush)

	checkpointEvery := j.Spec.CheckpointEvery
	if checkpointEvery <= 0 {
		checkpointEvery = d.cfg.CheckpointEvery
	}
	roundDelay := time.Duration(j.Spec.RoundDelayMS) * time.Millisecond

	lastRound := resumeRound
	// The stats observer fires inside the same TryStep immediately
	// before the signal observer, so the stashed counts always belong
	// to the round being published.
	var active, frontierWords int
	statsObserver := func(round, act, fw int) { active, frontierWords = act, fw }
	// Checkpoint writes land between rounds, after the round's signals
	// were already published, so the durability metadata is stashed here
	// and rides the NEXT round event. Both observers fire on the
	// supervisor goroutine — no locking needed for the pending fields.
	var pendCkptKind string
	var pendCkptBytes int
	var pendCkptNS int64
	var jobCkptBytes int64
	ckptObserver := func(kind string, n int, dur time.Duration) {
		pendCkptKind, pendCkptBytes, pendCkptNS = kind, n, dur.Nanoseconds()
		jobCkptBytes += int64(n)
		d.ckptBytes.Add(int64(n))
	}
	observer := func(round int, sent, heard []beep.Signal) {
		lastRound = round
		beeps := 0
		for _, s := range sent {
			if s != 0 {
				beeps++
			}
		}
		ev := Event{
			ID:            round,
			Type:          "round",
			Round:         round,
			Hash:          fmt.Sprintf("%016x", stab.TraceHash(round, sent, heard)),
			Beeps:         beeps,
			Active:        active,
			FrontierWords: frontierWords,
		}
		if pendCkptKind != "" {
			ev.CkptKind, ev.CkptBytes, ev.CkptNS = pendCkptKind, pendCkptBytes, pendCkptNS
			pendCkptKind = ""
		}
		line := ev.encode()
		if err := tw.Append(line); err != nil {
			cancelRun(fmt.Errorf("trace append: %w", err))
			return
		}
		d.hub.publish(j.ID, round, line)
		// Make the trace durable BEFORE the supervisor writes the
		// checkpoint for this round (the observer fires inside TryStep;
		// the checkpoint write happens after it returns). This ordering
		// is the recovery invariant: checkpoint at round R on disk ⇒
		// trace intact through R.
		if round%checkpointEvery == 0 {
			if err := tw.Sync(); err != nil {
				cancelRun(fmt.Errorf("trace sync: %w", err))
				return
			}
		}
		if roundDelay > 0 {
			select {
			case <-runCtx.Done():
			case <-time.After(roundDelay):
			}
		}
	}

	opts := []beep.Option{beep.WithObserver(observer), beep.WithStatsObserver(statsObserver)}
	if j.Spec.Noise > 0 {
		opts = append(opts, beep.WithNoise(beep.Noise{PLoss: j.Spec.Noise, PFalse: j.Spec.Noise}))
	}
	sup, err := stab.NewSupervisor(stab.SupervisorConfig{
		Graph:              g,
		Protocol:           proto,
		Seed:               j.Spec.Seed,
		Init:               initMode,
		Engine:             engine,
		Options:            opts,
		Ctx:                runCtx,
		FixedRounds:        j.Spec.Rounds,
		MaxRounds:          j.Spec.MaxRounds,
		MaxRetries:         j.Spec.MaxRetries,
		Deadline:           time.Duration(j.Spec.DeadlineMS) * time.Millisecond,
		CheckpointEvery:    checkpointEvery,
		CheckpointPath:     cpPath,
		CheckpointObserver: ckptObserver,
		Resume:             resume,
	})
	if err != nil {
		tw.Close()
		d.hub.closeTopic(j.ID)
		d.finishFailed(j, nil, resumeRound, fmt.Sprintf("configure run: %v", err))
		return
	}

	res, runErr := sup.Run()

	switch {
	case runErr == nil:
		d.finishTerminal(j, tw, res.Rounds, func(j *Job) {
			j.State = JobDone
			j.Rounds = res.Rounds
			j.Stabilized = res.Stabilized
			j.MISSize = res.MISSize
			j.Attempts = res.Attempts
			j.Checkpoints = res.Checkpoints
			j.CheckpointBytes = jobCkptBytes
			j.Resumed = res.Resumed
		})

	case errors.Is(runErr, stab.ErrCanceled):
		cause := context.Cause(runCtx)
		switch {
		case errors.Is(cause, errDrain):
			// Interrupted, not terminal: the checkpoint the supervisor
			// took on cancellation resumes this execution next startup.
			// No done event — the stream stays open-ended.
			tw.Close()
			d.hub.closeTopic(j.ID)
			d.transition(j, func(j *Job) {
				j.State = JobInterrupted
				j.Rounds = lastRound
				j.CheckpointBytes = jobCkptBytes
				j.Resumed = resume != nil
			})
		case errors.Is(cause, errClientCancel):
			d.finishTerminal(j, tw, lastRound, func(j *Job) {
				j.State = JobCanceled
				j.Rounds = lastRound
				j.CheckpointBytes = jobCkptBytes
				j.Resumed = resume != nil
			})
		default:
			// Internal stop (trace I/O failure, parent teardown):
			// surface the cause as the failure diagnostic.
			diag := runErr.Error()
			if cause != nil {
				diag = cause.Error()
			}
			d.finishFailed(j, tw, lastRound, diag)
		}

	default:
		// ErrBudget, ErrDeadline, contained machine panics, restore
		// mismatches: terminal failure with the full diagnostic.
		d.finishFailed(j, tw, lastRound, runErr.Error())
	}
}

// finishTerminal closes out a terminal job: apply the state mutation,
// append + publish the done event, make the trace durable, and tear the
// topic down so live subscribers observe the end of stream.
func (d *Daemon) finishTerminal(j *Job, tw *traceWriter, finalRound int, mutate func(*Job)) {
	d.transition(j, mutate)
	done := Event{
		ID:         finalRound + 1,
		Type:       "done",
		State:      j.State,
		Rounds:     j.Rounds,
		MISSize:    j.MISSize,
		Stabilized: j.Stabilized,
		Error:      j.Error,
	}
	line := done.encode()
	if tw != nil {
		tw.Append(line) // best effort; Close flushes and fsyncs
		tw.Close()
	}
	d.hub.publish(j.ID, done.ID, line)
	d.hub.closeTopic(j.ID)
}

// finishFailed lands the job in JobFailed with a diagnostic. tw may be
// nil when the failure happened before the trace was opened.
func (d *Daemon) finishFailed(j *Job, tw *traceWriter, finalRound int, diag string) {
	d.finishTerminal(j, tw, finalRound, func(j *Job) {
		j.State = JobFailed
		j.Rounds = finalRound
		j.Error = diag
	})
}
