// Package service implements beepd's job engine: a crash-recovering,
// overload-resilient daemon that runs beeping-model MIS simulations as
// supervised jobs behind an HTTP/JSON API.
//
// The robustness spine rests on three properties:
//
//  1. Determinism. Executions are a pure function of (spec, seed), so a
//     job killed at ANY instant — even before its first checkpoint —
//     re-executes bit-identically. Checkpoints are an optimization of
//     recovery, never a correctness requirement.
//  2. Atomic persistence. Every job.json transition and checkpoint
//     write goes through temp + fsync + rename (internal/atomicio); the
//     one append-mode file (the trace) is fsynced before each
//     checkpoint write, so a checkpoint at round R on disk implies the
//     trace is intact through R. Torn tails are truncated on resume.
//  3. Admission control. The queue is bounded per daemon and per
//     tenant; a full queue rejects with 429 + Retry-After instead of
//     degrading the jobs already running.
package service

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stab"
)

// Config tunes the daemon. The zero value is usable: Defaults fills
// every field.
type Config struct {
	// DataDir is the state directory (jobs, checkpoints, traces).
	DataDir string
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port;
	// the actual address is published to <data>/beepd.addr).
	Addr string
	// Workers is the number of concurrent job runners.
	Workers int
	// QueueDepth bounds jobs admitted but not yet running, across all
	// tenants. A full queue answers 429 with a Retry-After hint.
	QueueDepth int
	// TenantQueueDepth bounds one tenant's share of the queue, so a
	// single aggressive client cannot starve the others.
	TenantQueueDepth int
	// CheckpointEvery is the default auto-checkpoint cadence for specs
	// that do not set their own.
	CheckpointEvery int
	// DrainTimeout bounds graceful shutdown; runs that have not reached
	// a between-rounds cancellation point by then are abandoned (their
	// last auto-checkpoint still recovers them).
	DrainTimeout time.Duration
	// Logf receives daemon diagnostics (default log.Printf).
	Logf func(format string, args ...any)
}

// Defaults fills unset fields.
func (c *Config) Defaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.TenantQueueDepth <= 0 {
		c.TenantQueueDepth = c.QueueDepth
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 20 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Daemon is the beepd job engine: a bounded queue feeding a fixed
// worker pool, a persisted job table, and a pub/sub hub for live event
// streaming. Construct with New (which performs startup recovery),
// start serving with Start, stop with Shutdown.
type Daemon struct {
	cfg   Config
	store *Store
	hub   *hub

	mu       sync.Mutex
	jobs     map[string]*Job // all known jobs, persisted mirror
	pending  []*Job          // FIFO queue of jobs awaiting a worker
	queued   map[string]int  // per-tenant admission-counted queue share
	admitted int             // admission-counted queue occupancy
	cancels  map[string]context.CancelCauseFunc
	draining bool

	// ckptBytes accumulates checkpoint bytes persisted across all jobs
	// since startup (base snapshots + delta frames), for /v1/healthz.
	ckptBytes atomic.Int64

	wake     chan struct{} // pokes idle workers (capacity 1, never closed)
	drainCh  chan struct{} // closed once when Shutdown begins
	runCtx   context.Context
	stopRun  context.CancelCauseFunc
	wg       sync.WaitGroup
	listener net.Listener
	server   *http.Server
	doneCh   chan struct{}
}

// New opens (or creates) the data directory, runs startup recovery over
// every job found on disk, and returns a daemon ready to Start.
//
// Recovery policy, per job directory:
//
//   - unreadable or malformed job.json: quarantine it (job.json.bad)
//     and synthesize a failed record carrying the diagnostic — the
//     daemon must come up even over a mangled store;
//   - pending: re-queue as-is;
//   - running / interrupted (a crash or drain stopped it): if the
//     checkpoint file is missing, wipe the trace and re-queue a fresh
//     deterministic restart; if it is present and valid, re-queue a
//     resume; if it is present and REJECTED (tampered, torn), the job
//     fails with the validation diagnostic — recovery never guesses
//     around integrity;
//   - terminal states: left untouched.
func New(cfg Config) (*Daemon, error) {
	cfg.Defaults()
	store, err := OpenStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		store:   store,
		hub:     newHub(),
		jobs:    make(map[string]*Job),
		queued:  make(map[string]int),
		cancels: make(map[string]context.CancelCauseFunc),
		wake:    make(chan struct{}, 1),
		drainCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	d.runCtx, d.stopRun = context.WithCancelCause(context.Background())
	if err := d.recover(); err != nil {
		return nil, err
	}
	return d, nil
}

// recover scans the store and rebuilds the in-memory job table and
// queue. It must not fail on bad per-job state — only on an unusable
// store.
func (d *Daemon) recover() error {
	ids, err := d.store.jobIDs()
	if err != nil {
		return err
	}
	for _, id := range ids {
		j, err := d.store.LoadJob(id)
		if err != nil {
			d.cfg.Logf("beepd: recovery: job %s: %v — quarantining", id, err)
			bad := filepath.Join(d.store.JobDir(id), jobFileName)
			os.Rename(bad, bad+".bad") // best effort
			j = &Job{
				ID:        id,
				State:     JobFailed,
				CreatedAt: time.Now().UTC(),
				Error:     fmt.Sprintf("recovery: %v", err),
			}
			d.saveLocked(j)
			d.jobs[id] = j
			continue
		}
		switch j.State {
		case JobPending:
			d.jobs[id] = j
			d.pending = append(d.pending, j)

		case JobRunning, JobInterrupted:
			cpPath := d.store.CheckpointPath(id)
			if _, statErr := os.Stat(cpPath); statErr != nil {
				// No checkpoint: determinism makes a fresh restart
				// bit-exact. Wipe the stale trace so the re-execution
				// owns the log from round 0.
				os.Remove(d.store.TracePath(id))
				d.cfg.Logf("beepd: recovery: job %s interrupted before first checkpoint; restarting fresh", id)
			} else if _, cpErr := stab.ReadCheckpointFile(cpPath); cpErr != nil {
				// Tampered or torn checkpoint: fail with the integrity
				// diagnostic. The daemon keeps serving; the job does
				// not resume from unverifiable state.
				d.cfg.Logf("beepd: recovery: job %s: %v", id, cpErr)
				j.State = JobFailed
				j.Error = fmt.Sprintf("recovery: checkpoint rejected: %v", cpErr)
				j.UpdatedAt = time.Now().UTC()
				d.saveLocked(j)
				d.jobs[id] = j
				continue
			} else {
				d.cfg.Logf("beepd: recovery: job %s resumes from checkpoint", id)
			}
			j.State = JobPending
			j.Resumed = true
			j.UpdatedAt = time.Now().UTC()
			d.saveLocked(j)
			d.jobs[id] = j
			d.pending = append(d.pending, j)

		default:
			d.jobs[id] = j
		}
	}
	// Recovered jobs are NOT admission-counted: they were admitted in a
	// previous life and are bounded by what the disk holds; counting
	// them could wedge a freshly restarted daemon into rejecting all
	// new work.
	return nil
}

// Start binds the listener, publishes the address file, and launches
// the worker pool and HTTP server. It returns once the daemon is
// accepting connections.
func (d *Daemon) Start() error {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return fmt.Errorf("service: listen %s: %w", d.cfg.Addr, err)
	}
	d.listener = ln
	if err := d.store.WriteAddrFile(ln.Addr().String()); err != nil {
		ln.Close()
		return err
	}
	d.server = &http.Server{Handler: d.routes()}
	for i := 0; i < d.cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	go func() {
		if err := d.server.Serve(ln); err != nil && err != http.ErrServerClosed {
			d.cfg.Logf("beepd: serve: %v", err)
		}
	}()
	d.cfg.Logf("beepd: listening on %s (data %s, workers %d, queue %d)",
		ln.Addr(), d.store.Dir(), d.cfg.Workers, d.cfg.QueueDepth)
	return nil
}

// Addr returns the actual listen address (after Start).
func (d *Daemon) Addr() string {
	if d.listener == nil {
		return ""
	}
	return d.listener.Addr().String()
}

// worker pulls jobs off the queue until drain.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		j := d.dequeue()
		if j == nil {
			return
		}
		d.runJob(d.runCtx, j)
		// More work may be queued behind this one.
		select {
		case d.wake <- struct{}{}:
		default:
		}
	}
}

// dequeue blocks until a job is available or the daemon drains.
func (d *Daemon) dequeue() *Job {
	for {
		d.mu.Lock()
		if len(d.pending) > 0 && !d.draining {
			j := d.pending[0]
			d.pending = d.pending[1:]
			if d.queued[j.Spec.Tenant] > 0 {
				d.queued[j.Spec.Tenant]--
			}
			if d.admitted > 0 {
				d.admitted--
			}
			d.mu.Unlock()
			return j
		}
		stopped := d.draining
		d.mu.Unlock()
		if stopped {
			return nil
		}
		select {
		case <-d.wake:
		case <-d.drainCh:
			return nil
		case <-d.runCtx.Done():
			return nil
		}
	}
}

// Submit validates and enqueues a job, or rejects it:
// errQueueFull (429) when the daemon or tenant queue is saturated,
// errDraining (503) during shutdown. Spec errors surface as-is (400).
func (d *Daemon) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil, errDraining
	}
	if d.admitted >= d.cfg.QueueDepth {
		retry := d.retryAfterLocked()
		d.mu.Unlock()
		return nil, &queueFullError{scope: "daemon", retryAfter: retry}
	}
	if d.queued[spec.Tenant] >= d.cfg.TenantQueueDepth {
		retry := d.retryAfterLocked()
		d.mu.Unlock()
		return nil, &queueFullError{scope: "tenant " + spec.Tenant, retryAfter: retry}
	}
	now := time.Now().UTC()
	j := &Job{
		ID:        d.store.NextID(),
		Spec:      spec,
		State:     JobPending,
		CreatedAt: now,
		UpdatedAt: now,
	}
	if err := d.store.SaveJob(j); err != nil {
		d.mu.Unlock()
		return nil, err
	}
	d.jobs[j.ID] = j
	d.pending = append(d.pending, j)
	d.queued[spec.Tenant]++
	d.admitted++
	out := j.clone()
	d.mu.Unlock()
	select {
	case d.wake <- struct{}{}:
	default:
	}
	return out, nil
}

// retryAfterLocked estimates seconds until a queue slot frees: the
// backlog divided across the worker pool, floored at one second.
func (d *Daemon) retryAfterLocked() int {
	r := 1 + len(d.pending)/d.cfg.Workers
	if r < 1 {
		r = 1
	}
	return r
}

// Get returns a copy of one job.
func (d *Daemon) Get(id string) (*Job, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// List returns copies of jobs, optionally filtered by tenant and state,
// in ID order.
func (d *Daemon) List(tenant string, state JobState) []*Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Job, 0, len(d.jobs))
	for _, j := range d.jobs {
		if tenant != "" && j.Spec.Tenant != tenant {
			continue
		}
		if state != "" && j.State != state {
			continue
		}
		out = append(out, j.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cancel stops a job: a pending job is removed from the queue and
// canceled immediately; a running one is canceled cooperatively at the
// next between-rounds point (checkpointing first). Canceling a job in a
// terminal state is a no-op reporting false.
func (d *Daemon) Cancel(id string) (*Job, bool, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return nil, false, errUnknownJob
	}
	switch j.State {
	case JobPending:
		for i, p := range d.pending {
			if p.ID == id {
				d.pending = append(d.pending[:i], d.pending[i+1:]...)
				if d.queued[j.Spec.Tenant] > 0 {
					d.queued[j.Spec.Tenant]--
				}
				if d.admitted > 0 {
					d.admitted--
				}
				break
			}
		}
		j.State = JobCanceled
		j.UpdatedAt = time.Now().UTC()
		d.saveLocked(j)
		out := j.clone()
		d.mu.Unlock()
		return out, true, nil
	case JobRunning:
		cancel := d.cancels[id]
		out := j.clone()
		d.mu.Unlock()
		if cancel != nil {
			cancel(errClientCancel)
		}
		return out, true, nil
	default:
		out := j.clone()
		d.mu.Unlock()
		return out, false, nil
	}
}

// Shutdown drains the daemon: stop accepting submissions, cancel every
// running job with the drain cause (each checkpoints and lands in
// interrupted), wait for workers up to DrainTimeout, then stop the HTTP
// server. Safe to call once.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		<-d.doneCh
		return nil
	}
	d.draining = true
	cancels := make([]context.CancelCauseFunc, 0, len(d.cancels))
	for _, c := range d.cancels {
		cancels = append(cancels, c)
	}
	d.mu.Unlock()

	for _, c := range cancels {
		c(errDrain)
	}
	// Wake any workers parked on an empty queue.
	close(d.drainCh)

	workersDone := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(workersDone)
	}()
	timeout := time.NewTimer(d.cfg.DrainTimeout)
	defer timeout.Stop()
	var drainErr error
	select {
	case <-workersDone:
	case <-timeout.C:
		drainErr = fmt.Errorf("service: drain timeout after %v", d.cfg.DrainTimeout)
		d.stopRun(errDrain)
	case <-ctx.Done():
		drainErr = ctx.Err()
		d.stopRun(errDrain)
	}

	d.hub.closeAll()
	if d.server != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		d.server.Shutdown(shCtx)
	}
	d.stopRun(errDrain)
	close(d.doneCh)
	return drainErr
}

// transition applies a state mutation under the daemon lock and
// persists the record. Persistence failures are logged, not fatal: the
// in-memory table stays authoritative for this process, and the worst
// outcome after a crash is re-executing a completed deterministic job.
func (d *Daemon) transition(j *Job, mutate func(*Job)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mutate(j)
	j.UpdatedAt = time.Now().UTC()
	d.saveLocked(j)
}

func (d *Daemon) saveLocked(j *Job) {
	if err := d.store.SaveJob(j); err != nil {
		d.cfg.Logf("beepd: persist job %s: %v", j.ID, err)
	}
}

func (d *Daemon) registerCancel(id string, c context.CancelCauseFunc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cancels[id] = c
}

func (d *Daemon) unregisterCancel(id string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.cancels, id)
}
