package service

import (
	"fmt"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/famspec"
	"repro/internal/graph"
	"repro/internal/rng"
)

// famSeedSalt matches the beepmis CLI's graph-seed derivation, so a job
// spec and the equivalent command line build the identical topology.
const famSeedSalt = 0x9e37

// Spec bounds: admission control rejects out-of-range requests with a
// 400 before any memory is committed, so one misbehaving client cannot
// ask the daemon to materialize an absurd run.
const (
	// MaxSpecRounds bounds both fixed-length runs and stabilization
	// budgets.
	MaxSpecRounds = 50_000_000
	// MaxRoundDelay bounds the per-round pacing delay.
	MaxRoundDelay = 5 * time.Second
	// MaxSpecRetries bounds budget escalations.
	MaxSpecRetries = 16
)

// JobSpec is the client-supplied description of one simulation job: the
// graph, the protocol and the supervision envelope. It is persisted
// verbatim in the job directory, and every field is deterministic given
// the spec — two jobs with equal specs execute bit-identical runs,
// which is the property the crash-recovery proof rests on.
type JobSpec struct {
	// Name is an optional display label.
	Name string `json:"name,omitempty"`
	// Tenant attributes the job to a client for queue accounting;
	// empty means "default".
	Tenant string `json:"tenant,omitempty"`

	// Family is a graph family spec ("gnp:256:0.05", "grid:32:32", …;
	// see famspec.Help). The graph is derived deterministically from
	// Family and Seed.
	Family string `json:"family"`
	// Alg names the protocol (core.ProtocolNames); default
	// "alg1-known-delta".
	Alg string `json:"alg,omitempty"`
	// Init is the initial configuration: fresh | random (default) |
	// adversarial | zero.
	Init string `json:"init,omitempty"`
	// Engine selects the round engine (beep.ParseEngine); default
	// sequential.
	Engine string `json:"engine,omitempty"`
	// Seed is the root random seed.
	Seed uint64 `json:"seed"`
	// Noise applies symmetric listening noise (loss = false-positive =
	// Noise).
	Noise float64 `json:"noise,omitempty"`

	// Rounds > 0 runs the execution to exactly that round (the fixed-
	// length mode benchmark and observation workloads use); 0 runs to
	// stabilization under MaxRounds/MaxRetries.
	Rounds int `json:"rounds,omitempty"`
	// MaxRounds is the stabilization round budget of the first attempt
	// (0 = generous default for the graph).
	MaxRounds int `json:"maxRounds,omitempty"`
	// MaxRetries bounds budget escalations after the first attempt.
	MaxRetries int `json:"maxRetries,omitempty"`
	// DeadlineMS bounds each attempt's wall-clock time in milliseconds
	// (0 = none).
	DeadlineMS int `json:"deadlineMs,omitempty"`
	// CheckpointEvery auto-checkpoints every K rounds into the job
	// directory; 0 selects the daemon default. Lower is tighter
	// recovery, higher is less I/O.
	CheckpointEvery int `json:"checkpointEvery,omitempty"`
	// RoundDelayMS throttles the run to at most one round per this many
	// milliseconds — pacing for live observation and demos; it shapes
	// wall-clock only, never the trace.
	RoundDelayMS int `json:"roundDelayMs,omitempty"`
}

// Validate normalizes defaults and rejects malformed or out-of-bound
// specs. The graph family is resolved lazily at run time (building a
// large graph is the job's work, not admission's); everything else is
// checked here so a bad spec fails with a 400 instead of a failed job.
func (s *JobSpec) Validate() error {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Alg == "" {
		s.Alg = "alg1-known-delta"
	}
	if s.Family == "" {
		return fmt.Errorf("spec: family is required (e.g. %q)", "gnp:256:0.05")
	}
	if _, err := core.ProtocolByName(s.Alg); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, err := core.InitByName(s.Init); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.Engine != "" {
		if _, err := beep.ParseEngine(s.Engine); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	if s.Noise < 0 || s.Noise >= 1 {
		return fmt.Errorf("spec: noise %v out of range [0, 1)", s.Noise)
	}
	if s.Rounds < 0 || s.Rounds > MaxSpecRounds {
		return fmt.Errorf("spec: rounds %d out of range [0, %d]", s.Rounds, MaxSpecRounds)
	}
	if s.MaxRounds < 0 || s.MaxRounds > MaxSpecRounds {
		return fmt.Errorf("spec: maxRounds %d out of range [0, %d]", s.MaxRounds, MaxSpecRounds)
	}
	if s.Rounds > 0 && (s.MaxRounds > 0 || s.MaxRetries > 0) {
		return fmt.Errorf("spec: rounds (fixed-length) is exclusive with maxRounds/maxRetries")
	}
	if s.MaxRetries < 0 || s.MaxRetries > MaxSpecRetries {
		return fmt.Errorf("spec: maxRetries %d out of range [0, %d]", s.MaxRetries, MaxSpecRetries)
	}
	if s.DeadlineMS < 0 {
		return fmt.Errorf("spec: negative deadlineMs %d", s.DeadlineMS)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("spec: negative checkpointEvery %d", s.CheckpointEvery)
	}
	if d := time.Duration(s.RoundDelayMS) * time.Millisecond; d < 0 || d > MaxRoundDelay {
		return fmt.Errorf("spec: roundDelayMs %d out of range [0, %d]", s.RoundDelayMS, MaxRoundDelay/time.Millisecond)
	}
	return nil
}

// resolve builds the run ingredients from the validated spec.
func (s *JobSpec) resolve() (*graph.Graph, beep.Protocol, core.InitMode, beep.Engine, error) {
	g, err := famspec.Parse(s.Family, rng.New(s.Seed^famSeedSalt))
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("graph: %w", err)
	}
	proto, err := core.ProtocolByName(s.Alg)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	init, err := core.InitByName(s.Init)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	engine := beep.Sequential
	if s.Engine != "" {
		if engine, err = beep.ParseEngine(s.Engine); err != nil {
			return nil, nil, 0, 0, err
		}
	}
	return g, proto, init, engine, nil
}
