package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/atomicio"
)

// Event is one line of a job's trace log and one frame of the live
// stream. Round events carry the per-round trace hash — the same
// digest the chaos harness uses (stab.TraceHash) — so a client (or the
// chaos test) can verify bit-exact resume from the stream alone. The
// terminal "done" event reports the outcome.
//
// IDs are monotone: a round event's ID is its round number, the done
// event follows at final round + 1. Reconnecting with Last-Event-ID=N
// replays everything after N; because resumed executions are bit-exact,
// IDs never repeat with different payloads.
type Event struct {
	ID   int    `json:"id"`
	Type string `json:"type"` // "round" | "done"

	// Round events. Active and FrontierWords mirror the engine's
	// activity accounting (beep.WithStatsObserver): the number of
	// vertices whose words were processed this round and the frontier
	// mask's word count. Dense rounds report n and ceil(n/64); a fully
	// quiescent elided round reports 0/0.
	Round         int    `json:"round,omitempty"`
	Hash          string `json:"hash,omitempty"` // 16 hex digits, stab.TraceHash
	Beeps         int    `json:"beeps,omitempty"`
	Active        int    `json:"active,omitempty"`
	FrontierWords int    `json:"frontierWords,omitempty"`

	// Checkpoint durability metadata: the auto-checkpoint taken since
	// the previous round event (checkpoint writes happen between
	// rounds, so the information rides the next round's event). Kind is
	// "base" (full snapshot) or "delta" (incremental dirty-word frame);
	// bytes is the on-disk size of what was written, NS the capture +
	// encode + persist duration. These fields are NOT part of the
	// bit-exact trace contract (only Hash is): a resumed run may
	// legitimately re-checkpoint on a different cadence or kind.
	CkptKind  string `json:"ckptKind,omitempty"`
	CkptBytes int    `json:"ckptBytes,omitempty"`
	CkptNS    int64  `json:"ckptNS,omitempty"`

	// Done events.
	State      JobState `json:"state,omitempty"`
	Rounds     int      `json:"rounds,omitempty"`
	MISSize    int      `json:"misSize,omitempty"`
	Stabilized bool     `json:"stabilized,omitempty"`
	Error      string   `json:"error,omitempty"`
}

// encode renders the event as one NDJSON line (with trailing newline).
func (e *Event) encode() []byte {
	data, err := json.Marshal(e)
	if err != nil {
		// Event has no unmarshalable fields; this cannot happen.
		panic(fmt.Sprintf("service: encode event: %v", err))
	}
	return append(data, '\n')
}

// readTraceEvents reads the job's trace log, skipping events with
// ID ≤ after. A torn final line (the file is append-mode; a SIGKILL can
// land mid-write) terminates the scan silently: everything before it is
// intact, and the torn tail is rewritten by the resumed run. A missing
// file is an empty trace.
func readTraceEvents(path string, after int) ([]Event, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []Event
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: unterminated final line
		}
		line := data[:nl]
		data = data[nl+1:]
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn or corrupt tail; keep the intact prefix
		}
		if e.ID > after {
			out = append(out, e)
		}
	}
	return out, nil
}

// truncateTrace rewrites the trace log keeping only events with
// ID ≤ keep, atomically. A resumed run calls this with the checkpoint
// round before re-appending: the trace is fsynced before every
// checkpoint write, so the kept prefix always covers the checkpoint,
// and the re-executed rounds replace any unsynced or torn tail.
func truncateTrace(path string, keep int) error {
	events, err := readTraceEvents(path, 0)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, e := range events {
		if e.ID <= keep {
			buf.Write(e.encode())
		}
	}
	if buf.Len() == 0 {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return nil
		}
	}
	// Rewrite even when nothing was dropped: the scan may have stopped
	// at a torn or corrupt tail that the byte-level rewrite clears.
	return atomicio.WriteFileBytes(path, buf.Bytes())
}

// traceWriter appends events to the job's trace log through a buffer.
// Sync flushes AND fsyncs — the runner calls it immediately before
// every checkpoint write, which yields the recovery invariant: if a
// checkpoint for round R exists on disk, the trace holds every round
// ≤ R intact (rounds past R may be present from the torn tail, or
// absent; both are reconciled by truncateTrace on resume).
//
// All methods are safe for concurrent use: the runner appends from the
// observer while the hub flushes from subscriber goroutines.
type traceWriter struct {
	mu sync.Mutex
	f  *os.File
	bw *bufio.Writer
}

func openTraceWriter(path string) (*traceWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &traceWriter{f: f, bw: bufio.NewWriterSize(f, 1<<15)}, nil
}

func (w *traceWriter) Append(line []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, err := w.bw.Write(line)
	return err
}

// Flush drains the buffer to the OS (no fsync): enough for a replay
// read of the file to observe every appended event.
func (w *traceWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bw.Flush()
}

func (w *traceWriter) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *traceWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	ferr := w.bw.Flush()
	serr := w.f.Sync()
	cerr := w.f.Close()
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}
