package service

import "time"

// JobState is the job lifecycle state machine:
//
//	pending ──► running ──► done
//	   │           │   ├──► failed
//	   │           │   └──► canceled
//	   │           └──────► interrupted ──► (recovery) ──► pending
//	   └──────────────────► canceled
//
// pending and interrupted are the resumable states: on startup the
// daemon re-queues both (interrupted jobs resume from their last valid
// checkpoint; a tampered or torn checkpoint moves the job to failed
// with the validation diagnostic instead). done, failed and canceled
// are terminal.
type JobState string

const (
	// JobPending is queued, not yet started (or re-queued by recovery).
	JobPending JobState = "pending"
	// JobRunning is executing on a worker.
	JobRunning JobState = "running"
	// JobInterrupted was checkpointed and stopped by a drain (SIGTERM)
	// or a crash; it resumes on the next startup.
	JobInterrupted JobState = "interrupted"
	// JobDone completed; for stabilization jobs the MIS was verified.
	JobDone JobState = "done"
	// JobFailed hit an unrecoverable error; Error carries the
	// diagnostic.
	JobFailed JobState = "failed"
	// JobCanceled was canceled by a client.
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// Job is the persisted record of one job (job.json in the job
// directory, written atomically on every transition). Wall-clock
// timestamps are bookkeeping only — nothing in the execution or its
// trace depends on them.
type Job struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`

	CreatedAt time.Time `json:"createdAt"`
	UpdatedAt time.Time `json:"updatedAt"`

	// Rounds is the execution's round counter at the last transition
	// (final for terminal states, the checkpointed round for
	// interrupted ones).
	Rounds int `json:"rounds,omitempty"`
	// Stabilized/MISSize report the verified outcome (stabilization
	// jobs always stabilize when done; fixed-length jobs report
	// whatever the horizon reached).
	Stabilized bool `json:"stabilized,omitempty"`
	MISSize    int  `json:"misSize,omitempty"`
	// Attempts counts supervisor budget episodes; Checkpoints counts
	// auto-checkpoints taken by the most recent run.
	Attempts    int `json:"attempts,omitempty"`
	Checkpoints int `json:"checkpoints,omitempty"`
	// CheckpointBytes is the cumulative bytes of checkpoint data the
	// most recent run persisted (base snapshots plus delta frames).
	CheckpointBytes int64 `json:"checkpointBytes,omitempty"`
	// Resumed reports that the most recent run continued from a
	// checkpoint rather than starting fresh.
	Resumed bool `json:"resumed,omitempty"`
	// Error is the diagnostic for failed jobs (contained panic, budget
	// exhaustion, tampered checkpoint, …).
	Error string `json:"error,omitempty"`
}

// clone returns a copy safe to serve outside the daemon lock.
func (j *Job) clone() *Job {
	c := *j
	return &c
}
