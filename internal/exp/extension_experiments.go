package exp

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunE9 probes robustness beyond the paper's model: listening noise
// (per-round, per-vertex false negatives and false positives on the
// beep channel; the paper assumes reliable beeps).
//
// Two notions of correctness are reported:
//
//   - strict: the paper's legality S_t = V, where every MIS member's
//     neighbors sit exactly at ℓmax. A single dropped beep anywhere
//     breaks it for a round, so it cannot persist under noise by
//     definition.
//   - functional: the prominent set {v : ℓ(v) <= 0} is a valid MIS of
//     the graph. This is what the level hysteresis actually protects —
//     evicting a committed member needs ~ℓmax consecutive phantom
//     beeps (probability ε^ℓmax).
func RunE9(cfg Config) error {
	trials := cfg.trials(3, 10)
	n := 256
	if cfg.Full {
		n = 1024
	}
	const window = 1000
	budget := 100000

	tab := &Table{
		Title:   fmt.Sprintf("E9: listening noise ε (false± per channel per round), Algorithm 1 known Δ, gnp-avg8 n=%d", n),
		Columns: []string{"ε", "func-stab", "rounds(func)", "strict-frac", "func-frac", "member-flips"},
		Notes: []string{
			"func-stab: trials whose prominent set became a valid MIS within the budget",
			fmt.Sprintf("strict-frac / func-frac: fraction of a %d-round window (after functional stabilization) satisfying each condition", window),
			"member-flips: vertices whose committed (prominent) status flipped at least once during the window",
			"strict legality cannot persist under noise by definition; functional membership is hysteresis-protected",
		},
	}

	for _, eps := range []float64{0, 0.001, 0.01, 0.05, 0.1, 0.2} {
		funcStab := 0
		var rounds, strictFrac, funcFrac, flips []float64
		for trial := 0; trial < trials; trial++ {
			g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 9, uint64(eps*1e6), uint64(trial), 1)))
			proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
			net, err := beep.NewNetwork(g, proto, cellSeed(cfg.Seed, 9, uint64(eps*1e6), uint64(trial), 2),
				beep.WithNoise(beep.Noise{PLoss: eps, PFalse: eps}))
			if err != nil {
				return fmt.Errorf("E9 ε=%v: %w", eps, err)
			}
			net.RandomizeAll()

			var probe core.State
			functionalMIS := func() ([]bool, bool) {
				if probe.Refresh(net) != nil {
					return nil, false
				}
				mask := make([]bool, n)
				for v := 0; v < n; v++ {
					mask[v] = probe.Prominent(v)
				}
				return mask, g.VerifyMIS(mask) == nil
			}
			strictNow := func() bool {
				return probe.Refresh(net) == nil && probe.Stabilized()
			}

			stop := func() bool {
				_, ok := functionalMIS()
				return ok
			}
			r, ok := net.Run(budget, stop)
			if !ok {
				net.Close()
				continue
			}
			funcStab++
			rounds = append(rounds, float64(r))

			ref, _ := functionalMIS()
			flipped := make([]bool, n)
			strictRounds, funcRounds := 0, 0
			for w := 0; w < window; w++ {
				net.Step()
				if strictNow() {
					strictRounds++
				}
				mask, ok := functionalMIS()
				if ok {
					funcRounds++
				}
				for v := range mask {
					if mask[v] != ref[v] {
						flipped[v] = true
					}
				}
			}
			net.Close()
			strictFrac = append(strictFrac, float64(strictRounds)/window)
			funcFrac = append(funcFrac, float64(funcRounds)/window)
			flips = append(flips, float64(graph.CountTrue(flipped)))
		}
		tab.AddRow(fmt.Sprintf("%.3g", eps),
			fmt.Sprintf("%d/%d", funcStab, trials),
			F(Summarize(rounds).Mean),
			fmt.Sprintf("%.3f", Summarize(strictFrac).Mean),
			fmt.Sprintf("%.3f", Summarize(funcFrac).Mean),
			F(Summarize(flips).Mean))
	}
	return cfg.Render(tab)
}

// RunE10 evaluates the repository's heuristic answer to the paper's
// open question (Section 8): removing all topology knowledge via
// collision-triggered cap doubling (core.AdaptiveAlg1). It compares
// rounds against the known-Δ oracle variant and reports how much
// "knowledge" the heuristic discovers (final caps vs the oracle cap).
func RunE10(cfg Config) error {
	trials := cfg.trials(5, 20)

	tab := &Table{
		Title:   "E10: zero-knowledge adaptive caps vs known-Δ oracle (arbitrary initial states, mean)",
		Columns: []string{"family", "n", "oracle-rounds", "adaptive-rounds", "ratio", "oracle-ℓmax", "adaptive-ℓmax(mean)", "ok"},
		Notes: []string{
			"adaptive: collision-triggered doubling from ℓmax=4, no topology knowledge at all (open problem, Section 8)",
			"adaptive-ℓmax(mean): mean final cap across vertices — how much 'knowledge' the heuristic discovered",
			"no w.h.p. guarantee is claimed for the heuristic; ok counts runs stabilizing within the default budget",
		},
	}

	for _, fam := range denseFamilies() {
		for _, size := range compareSizes(cfg) {
			var oracleRounds, adaptiveRounds, finalCaps []float64
			oracleCap := 0
			okCount := 0
			for trial := 0; trial < trials; trial++ {
				g := fam.build(size, rng.New(cellSeed(cfg.Seed, 10, uint64(size), uint64(trial), 1)))
				seed := cellSeed(cfg.Seed, 10, uint64(size), uint64(trial), 2)

				cap := core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)
				oracleCap = cap(0, g)
				ores, err := core.Run(core.RunConfig{
					Graph: g, Protocol: core.NewAlg1(cap), Seed: seed, Init: core.InitRandom,
				})
				if err != nil {
					return fmt.Errorf("E10 oracle %s n=%d: %w", fam.name, size, err)
				}
				oracleRounds = append(oracleRounds, float64(ores.Rounds))

				// The adaptive run needs machine access for final caps.
				net, err := beep.NewNetwork(g, core.NewAdaptiveAlg1(), seed^0xad)
				if err != nil {
					return err
				}
				net.RandomizeAll()
				var probe core.State
				stop := func() bool {
					return probe.Refresh(net) == nil && probe.Stabilized()
				}
				r, ok := net.Run(200000, stop)
				if ok {
					okCount++
					adaptiveRounds = append(adaptiveRounds, float64(r))
					st, err := core.Snapshot(net)
					if err != nil {
						net.Close()
						return err
					}
					if err := st.VerifyMIS(); err != nil {
						net.Close()
						return fmt.Errorf("E10 adaptive %s n=%d: %w", fam.name, size, err)
					}
					capSum := 0
					for v := 0; v < net.N(); v++ {
						capSum += st.Cap(v)
					}
					if net.N() > 0 {
						finalCaps = append(finalCaps, float64(capSum)/float64(net.N()))
					}
				}
				net.Close()
			}
			om, am := Summarize(oracleRounds).Mean, Summarize(adaptiveRounds).Mean
			ratio := 0.0
			if om > 0 {
				ratio = am / om
			}
			tab.AddRow(fam.name, I(size), F(om), F(am), F(ratio), I(oracleCap),
				F(Summarize(finalCaps).Mean), fmt.Sprintf("%d/%d", okCount, trials))
		}
	}
	return cfg.Render(tab)
}
