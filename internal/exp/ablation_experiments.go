package exp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunE8 runs the ablation suite motivated by Section 2 and the
// conclusion: the role of the slack constant c1, what happens when
// ℓmax is pushed below the analysis threshold, one versus two channels,
// sensitivity to the initial configuration, and the classical
// message-passing reference points.
func RunE8(cfg Config) error {
	if err := runE8C1Sweep(cfg); err != nil {
		return err
	}
	if err := runE8BelowThreshold(cfg); err != nil {
		return err
	}
	if err := runE8Channels(cfg); err != nil {
		return err
	}
	if err := runE8InitModes(cfg); err != nil {
		return err
	}
	return runE8Reference(cfg)
}

// runE8C1Sweep varies the slack constant c1 of Theorem 2.1. The
// theorems require c1 >= 15, but the constant trades robustness margin
// (smaller η) against the ℓmax-proportional commitment delay; the sweep
// shows the measured cost of slack.
func runE8C1Sweep(cfg Config) error {
	trials := cfg.trials(5, 20)
	n := 256
	if cfg.Full {
		n = 2048
	}
	tab := &Table{
		Title:   fmt.Sprintf("E8a: slack constant c1 (Algorithm 1, known Δ, gnp-avg8, n=%d)", n),
		Columns: []string{"c1", "ℓmax", "rounds(mean)", "rounds(p90)"},
		Notes:   []string{"Theorem 2.1 requires c1 >= 15; smaller c1 voids the w.h.p. guarantee but often still stabilizes, faster"},
	}
	for _, c1 := range []int{4, 8, 15, 30, 60} {
		var rounds []float64
		lmax := 0
		for trial := 0; trial < trials; trial++ {
			g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 81, uint64(c1), uint64(trial), 1)))
			cap := core.KnownMaxDegreeExact(c1)
			lmax = cap(0, g)
			res, err := core.Run(core.RunConfig{
				Graph:    g,
				Protocol: core.NewAlg1(cap),
				Seed:     cellSeed(cfg.Seed, 81, uint64(c1), uint64(trial), 2),
				Init:     core.InitRandom,
			})
			if err != nil {
				return fmt.Errorf("E8a c1=%d: %w", c1, err)
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		s := Summarize(rounds)
		tab.AddRow(I(c1), I(lmax), F(s.Mean), F(s.P90))
	}
	return cfg.Render(tab)
}

// runE8BelowThreshold pushes ℓmax below the lemmas' log2(deg)+4
// precondition on a clique, where the beeping-probability floor 2^-ℓmax
// keeps collision rates high: stabilization within the budget becomes
// unreliable, demonstrating that the knowledge requirement is real.
func runE8BelowThreshold(cfg Config) error {
	trials := cfg.trials(5, 20)
	const n = 64
	const budget = 30000
	tab := &Table{
		Title:   fmt.Sprintf("E8b: constant ℓmax below the threshold (complete graph K_%d, budget %d rounds)", n, budget),
		Columns: []string{"ℓmax", "log2Δ+4", "stabilized", "trials", "rounds(mean, stabilized only)"},
	}
	need := 0
	for x := n - 1; x > 1; x >>= 1 {
		need++
	}
	need += 4
	for _, cap := range []int{2, 3, 4, 6, need, need + 8} {
		stabilized := 0
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			res, err := core.Run(core.RunConfig{
				Graph:     graph.Complete(n),
				Protocol:  core.NewAlg1(core.ConstantCap(cap)),
				Seed:      cellSeed(cfg.Seed, 82, uint64(cap), uint64(trial)),
				Init:      core.InitRandom,
				MaxRounds: budget,
			})
			switch {
			case err == nil:
				stabilized++
				rounds = append(rounds, float64(res.Rounds))
			case errors.Is(err, core.ErrNotStabilized):
				// Expected failure mode below the threshold.
			default:
				return fmt.Errorf("E8b cap=%d: %w", cap, err)
			}
		}
		tab.AddRow(I(cap), I(need), I(stabilized), I(trials), F(Summarize(rounds).Mean))
	}
	return cfg.Render(tab)
}

// runE8Channels compares Algorithm 1 (one channel, known Δ) with
// Algorithm 2 (two channels, deg₂) on identical instances: the price
// and benefit of the second channel.
func runE8Channels(cfg Config) error {
	trials := cfg.trials(5, 20)
	tab := &Table{
		Title:   "E8c: one vs two beeping channels (arbitrary initial states, mean rounds)",
		Columns: []string{"family", "n", "alg1(known Δ)", "alg2(two-chan, deg₂)", "alg2/alg1"},
	}
	for _, fam := range denseFamilies() {
		for _, n := range compareSizes(cfg) {
			var a1, a2 []float64
			for trial := 0; trial < trials; trial++ {
				g := fam.build(n, rng.New(cellSeed(cfg.Seed, 83, uint64(n), uint64(trial), 1)))
				seed := cellSeed(cfg.Seed, 83, uint64(n), uint64(trial), 2)
				r1, err := core.Run(core.RunConfig{
					Graph:    g,
					Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
					Seed:     seed, Init: core.InitRandom,
				})
				if err != nil {
					return fmt.Errorf("E8c alg1 %s n=%d: %w", fam.name, n, err)
				}
				r2, err := core.Run(core.RunConfig{
					Graph:    g,
					Protocol: core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop)),
					Seed:     seed, Init: core.InitRandom,
				})
				if err != nil {
					return fmt.Errorf("E8c alg2 %s n=%d: %w", fam.name, n, err)
				}
				a1 = append(a1, float64(r1.Rounds))
				a2 = append(a2, float64(r2.Rounds))
			}
			m1, m2 := Summarize(a1).Mean, Summarize(a2).Mean
			ratio := 0.0
			if m1 > 0 {
				ratio = m2 / m1
			}
			tab.AddRow(fam.name, I(n), F(m1), F(m2), F(ratio))
		}
	}
	return cfg.Render(tab)
}

// runE8InitModes quantifies sensitivity to the initial configuration:
// a self-stabilizing algorithm's round counts should be of the same
// order for fresh, random, adversarial and zero starts.
func runE8InitModes(cfg Config) error {
	trials := cfg.trials(5, 20)
	n := 256
	if cfg.Full {
		n = 2048
	}
	tab := &Table{
		Title:   fmt.Sprintf("E8d: initial-configuration sensitivity (Algorithm 1, gnp-avg8, n=%d, mean rounds)", n),
		Columns: []string{"init", "rounds(mean)", "median", "max"},
	}
	for _, init := range []core.InitMode{core.InitFresh, core.InitRandom, core.InitAdversarial, core.InitZero} {
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 84, uint64(init), uint64(trial), 1)))
			res, err := core.Run(core.RunConfig{
				Graph:    g,
				Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
				Seed:     cellSeed(cfg.Seed, 84, uint64(init), uint64(trial), 2),
				Init:     init,
			})
			if err != nil {
				return fmt.Errorf("E8d init=%v: %w", init, err)
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		s := Summarize(rounds)
		tab.AddRow(init.String(), F(s.Mean), F(s.Median), F(s.Max))
	}
	return cfg.Render(tab)
}

// runE8Reference places the beeping algorithms next to Luby on the
// message-passing substrate and the sequential greedy MIS: round counts
// under incomparable communication models, plus output MIS sizes.
func runE8Reference(cfg Config) error {
	trials := cfg.trials(3, 10)
	tab := &Table{
		Title:   "E8e: classical reference points (mean over trials)",
		Columns: []string{"family", "n", "luby-rounds", "luby-|MIS|", "alg1-|MIS|", "greedy-|MIS|"},
		Notes: []string{
			"luby runs on the message-passing substrate (Θ(log n)-bit messages per round); the beeping model transmits 1 bit",
			"MIS sizes are close across algorithms: all outputs are maximal independent sets of the same graphs",
		},
	}
	for _, fam := range denseFamilies() {
		for _, n := range compareSizes(cfg) {
			lr, ls, as, gs, err := lubyReference(cfg, fam, n, trials)
			if err != nil {
				return fmt.Errorf("E8e: %w", err)
			}
			tab.AddRow(fam.name, I(n), F(lr), F(ls), F(as), F(gs))
		}
	}
	return cfg.Render(tab)
}
