package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Config controls the scale of an experiment run.
type Config struct {
	// Full selects the paper-scale sweeps (larger n, more trials);
	// otherwise quick laptop-scale defaults are used.
	Full bool
	// Seed is the root seed; every (experiment, family, size, trial)
	// cell derives a distinct child seed so cells are independent and
	// the whole suite is reproducible.
	Seed uint64
	// Trials overrides the per-cell trial count when > 0.
	Trials int
	// Out receives the rendered tables and series.
	Out io.Writer
	// JSON switches output from aligned text to one JSON document per
	// table/series.
	JSON bool
	// Manifest, when non-nil, makes the sweeps resumable: finished
	// cells are recorded (and fsynced) as they complete, and cells
	// already on record are reused instead of recomputed. Because cell
	// seeds are derived from (seed, experiment, n, trial), a resumed
	// sweep's numbers are identical to an uninterrupted one's.
	Manifest *Manifest
	// Workers bounds trial-level parallelism for the experiments that
	// fan replications across goroutines (E18's replication pools);
	// 0 means GOMAXPROCS. Results never depend on it — trials derive
	// all randomness from their own seeds.
	Workers int
}

// trials returns the effective trial count.
func (c Config) trials(quick, full int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Full {
		return full
	}
	return quick
}

// sizes returns the sweep sizes.
func (c Config) sizes() []int {
	if c.Full {
		return []int{256, 1024, 4096, 16384, 65536}
	}
	return []int{64, 128, 256, 512, 1024}
}

// cellSeed derives the deterministic seed of one measurement cell.
func cellSeed(root uint64, parts ...uint64) uint64 {
	h := root ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
	}
	return h
}

// Experiment is one registered reproduction target.
type Experiment struct {
	ID          string
	Title       string
	Description string
	Run         func(cfg Config) error
}

// registry holds the experiment suite in presentation order.
func registry() []Experiment {
	return []Experiment{
		{ID: "F1", Title: "Figure 1: beeping-probability activation function", Description: "p_t(v) as a function of ℓ_t(v)", Run: RunF1},
		{ID: "E1", Title: "Theorem 2.1: known max degree, O(log n)", Description: "stabilization rounds vs n across graph families, arbitrary initial states", Run: RunE1},
		{ID: "E2", Title: "Theorem 2.2: own degree, O(log n · log log n)", Description: "stabilization rounds vs n with per-vertex degree knowledge", Run: RunE2},
		{ID: "E3", Title: "Corollary 2.3: two channels, O(log n)", Description: "Algorithm 2 stabilization rounds vs n", Run: RunE3},
		{ID: "E4", Title: "Versus Jeavons–Scott–Xu (non-self-stabilizing)", Description: "fresh-start parity and corrupted-start failure of the baseline", Run: RunE4},
		{ID: "E5", Title: "Versus Afek-style restart baseline", Description: "self-stabilizing round counts: O(log n) vs polylog-with-restarts", Run: RunE5},
		{ID: "E6", Title: "Transient-fault recovery and closure", Description: "re-stabilization rounds after corrupting k states", Run: RunE6},
		{ID: "E7", Title: "Lemma 3.5/3.6 tails", Description: "platinum-round waiting times and prominence overshoots", Run: RunE7},
		{ID: "E8", Title: "Ablations", Description: "c1 slack, below-threshold caps, channels, init modes, Luby/greedy reference", Run: RunE8},
		{ID: "E9", Title: "Extension: listening noise", Description: "stabilization and persistence under per-round false positives/negatives", Run: RunE9},
		{ID: "E10", Title: "Extension: zero topology knowledge (open problem)", Description: "collision-triggered adaptive caps vs the known-Δ oracle", Run: RunE10},
		{ID: "E11", Title: "Convergence dynamics and topology metadata", Description: "per-round |S_t| curves per init mode; family diameters/degrees", Run: RunE11},
		{ID: "E12", Title: "Extension: duty-cycling (sleeping vertices)", Description: "stabilization and persistence when vertices miss rounds with probability p", Run: RunE12},
		{ID: "E13", Title: "Beep (energy) complexity", Description: "convergence and steady-state transmissions: the energy price of fault detection", Run: RunE13},
		{ID: "E14", Title: "Availability under recurring faults", Description: "fraction of legal rounds when faults arrive on a fixed period", Run: RunE14},
		{ID: "E15", Title: "Topology churn storms", Description: "re-stabilization, availability and repair locality under live rewiring (flap/growth/crash/partition-heal)", Run: RunE15},
		{ID: "E16", Title: "Adversarial beepers", Description: "correct-subgraph MIS quality vs adversary count, placement and policy (jammer/mute)", Run: RunE16},
		{ID: "E17", Title: "Chaos kill–resume certification", Description: "randomized kills resumed from integrity-checked checkpoints must replay bit-exact across engines and fault regimes", Run: RunE17},
		{ID: "E18", Title: "Stabilization-time tails at high replication", Description: "p99/max stabilization rounds from ≥1000 reseed-in-place replications per cell", Run: RunE18},
		{ID: "E19", Title: "Backend scaling to n=10⁸", Description: "ns/vertex/round and bytes/vertex for the csr/compact/implicit graph backends (implicit reaches 10⁸ with --full)", Run: RunE19},
		// E20 is reserved for the protocol-portfolio tournament (ROADMAP
		// open item 5).
		{ID: "E21", Title: "Activity decay and the sparse-round payoff", Description: "per-round frontier decay under WithStatsObserver and whole-run dense vs sparse wall-clock (bit-identical traces)", Run: RunE21},
		{ID: "E22", Title: "Checkpoint cost vs cadence vs corruption", Description: "per-tick capture+encode cost of v2 JSON vs v3 binary vs v3 delta checkpoints across checkpoint cadences and transient-fault rates", Run: RunE22},
	}
}

// IDs returns the registered experiment identifiers in order.
func IDs() []string {
	var ids []string
	for _, e := range registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// Lookup finds an experiment by (case-sensitive) id.
func Lookup(id string) (Experiment, error) {
	for _, e := range registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, IDs())
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) error {
	for _, e := range registry() {
		if !cfg.JSON {
			fmt.Fprintf(cfg.Out, "=== %s — %s ===\n%s\n\n", e.ID, e.Title, e.Description)
		}
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("exp %s: %w", e.ID, err)
		}
	}
	return nil
}

// familyGen names a graph family and builds instances of a given size.
type familyGen struct {
	name  string
	build func(n int, src *rng.Source) *graph.Graph
}

// standardFamilies is the cross-family sweep used by E1/E2/E3: it mixes
// bounded-degree, dense, heterogeneous and random topologies.
func standardFamilies() []familyGen {
	return []familyGen{
		{name: "cycle", build: func(n int, _ *rng.Source) *graph.Graph { return graph.Cycle(n) }},
		{name: "torus", build: func(n int, _ *rng.Source) *graph.Graph { return torusOf(n) }},
		{name: "bintree", build: func(n int, _ *rng.Source) *graph.Graph { return graph.BinaryTree(n) }},
		{name: "gnp-avg8", build: func(n int, src *rng.Source) *graph.Graph { return graph.GNPAvgDegree(n, 8, src) }},
		{name: "star", build: func(n int, _ *rng.Source) *graph.Graph { return graph.Star(n) }},
		{name: "ba-m2", build: func(n int, src *rng.Source) *graph.Graph { return graph.PreferentialAttachment(n, 2, src) }},
	}
}

// torusOf returns a near-square torus with about n vertices.
func torusOf(n int) *graph.Graph {
	r := 2
	for r*r < n {
		r++
	}
	c := (n + r - 1) / r
	if r < 3 {
		r = 3
	}
	if c < 3 {
		c = 3
	}
	return graph.Torus(r, c)
}

// denseFamilies adds the contention-heavy topologies used by the
// comparison experiments at smaller sizes.
func denseFamilies() []familyGen {
	return []familyGen{
		{name: "complete", build: func(n int, _ *rng.Source) *graph.Graph { return graph.Complete(n) }},
		{name: "gnp-avg8", build: func(n int, src *rng.Source) *graph.Graph { return graph.GNPAvgDegree(n, 8, src) }},
		{name: "cycle", build: func(n int, _ *rng.Source) *graph.Graph { return graph.Cycle(n) }},
	}
}

// sortedKeys returns map keys in sorted order for deterministic tables.
func sortedKeys[K int | string, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
