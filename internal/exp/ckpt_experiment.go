package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunE22 measures what checkpoint format v3 (DESIGN §12) buys each
// durability consumer: the per-tick cost of a checkpoint — state walk
// plus serialization — across the three codecs (v2 JSON full
// snapshot, v3 binary full snapshot, v3 incremental delta), swept
// over the two knobs an operator actually turns:
//
//   - cadence: rounds between checkpoint ticks. Shorter cadences give
//     tighter recovery points and fewer dirty words per tick — the
//     delta's cost shrinks with the cadence while both full snapshots
//     stay O(n).
//   - corruption: transient faults injected right after the baseline
//     (the self-stabilization workload). More corruption dirties more
//     words, pushing the delta toward full-snapshot cost; the
//     dirty-frac column shows where the chain writer's compaction
//     policy (internal/ckpt, ≥½ dirty) would write a base instead.
//
// Each cell starts from the same stabilized torus configuration
// (restored from a held base snapshot, then re-baselined), corrupts k
// distinct random states, advances `cadence` rounds on the auto-sparse
// flat engine, and times each codec's capture+encode. Sizes are
// per-cell costs, not chain totals; timings are min over trials.
func RunE22(cfg Config) error {
	trials := cfg.trials(2, 3)
	sizes := []int{4096, 65536}
	if cfg.Full {
		sizes = append(sizes, 1_000_000)
	}
	cadences := []int{4, 32}
	corrupts := []int{1, 16, 256}

	tab := &Table{
		Title:   "E22: checkpoint cost vs cadence vs corruption (flat engine, stabilized torus start)",
		Columns: []string{"n", "cadence", "corrupt", "dirty-frac", "json-KB", "bin-KB", "delta-KB", "json-us", "bin-us", "delta-us", "speedup"},
		Notes: []string{
			"per-tick checkpoint cost: state walk + serialization, min over trials; sizes are per-cell, not chain totals",
			"dirty-frac: slab words dirtied since the baseline / total words — what the delta pays for, and what the chain writer's ≥1/2 compaction policy inspects",
			"json/bin: v2 JSON and v3 binary full snapshots (both O(n) regardless of dirt); delta: v3 incremental (cost tracks dirty-frac)",
			"speedup: json-us / delta-us — the factor the delta path takes off the pre-v3 per-tick cost",
			"chain replay equals the full snapshot bit-exactly (internal/ckpt round-trip suites, E17 chaos matrices)",
		},
	}

	for _, n := range sizes {
		g := torusOf(n)
		seed := cellSeed(cfg.Seed, 22, uint64(n), 0, 1)
		net, base, err := stableCkptBaseline(g, seed)
		if err != nil {
			return fmt.Errorf("E22 n=%d: %w", n, err)
		}
		totalWords := (n + 63) / 64
		faults := rng.New(cellSeed(cfg.Seed, 22, uint64(n), 0, 2))
		for _, cadence := range cadences {
			for _, corrupt := range corrupts {
				var dirtyFrac, jsonKB, binKB, deltaKB []float64
				bestJSON, bestBin, bestDelta := 0.0, 0.0, 0.0
				for trial := 0; trial < trials; trial++ {
					// Same stabilized start for every cell: restore the
					// held base (marks everything dirty), then re-arm the
					// dirty baseline with a fresh capture.
					if err := net.Restore(base); err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d restore: %w", n, err)
					}
					if _, err := net.Checkpoint(); err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d rebaseline: %w", n, err)
					}
					if err := net.Corrupt(faults.Perm(n)[:corrupt]); err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d corrupt: %w", n, err)
					}
					for r := 0; r < cadence; r++ {
						if err := net.TryStep(); err != nil {
							net.Close()
							return fmt.Errorf("E22 n=%d step: %w", n, err)
						}
					}
					dirtyFrac = append(dirtyFrac, float64(net.DirtyWords())/float64(totalWords))

					// Delta first: CheckpointDelta consumes (and re-arms)
					// the dirty baseline the full captures would reset.
					start := time.Now()
					d, err := net.CheckpointDelta(1)
					if err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d delta: %w", n, err)
					}
					dEnc, err := beep.EncodeDelta(d)
					if err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d delta encode: %w", n, err)
					}
					deltaUS := float64(time.Since(start)) / float64(time.Microsecond)

					start = time.Now()
					cp, err := net.Checkpoint()
					if err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d snapshot: %w", n, err)
					}
					bEnc, err := beep.EncodeSnapshot(cp)
					if err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d binary encode: %w", n, err)
					}
					binUS := float64(time.Since(start)) / float64(time.Microsecond)

					start = time.Now()
					cp, err = net.Checkpoint()
					if err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d snapshot: %w", n, err)
					}
					var cw countingDiscard
					if err := beep.WriteCheckpoint(&cw, cp); err != nil {
						net.Close()
						return fmt.Errorf("E22 n=%d json encode: %w", n, err)
					}
					jsonUS := float64(time.Since(start)) / float64(time.Microsecond)

					jsonKB = append(jsonKB, float64(cw.n)/1024)
					binKB = append(binKB, float64(len(bEnc))/1024)
					deltaKB = append(deltaKB, float64(len(dEnc))/1024)
					if trial == 0 || jsonUS < bestJSON {
						bestJSON = jsonUS
					}
					if trial == 0 || binUS < bestBin {
						bestBin = binUS
					}
					if trial == 0 || deltaUS < bestDelta {
						bestDelta = deltaUS
					}
				}
				tab.AddRow(I(n), I(cadence), I(corrupt),
					F(Summarize(dirtyFrac).Mean),
					F(Summarize(jsonKB).Mean), F(Summarize(binKB).Mean), F(Summarize(deltaKB).Mean),
					F(bestJSON), F(bestBin), F(bestDelta), F(bestJSON/bestDelta))
			}
		}
		net.Close()
	}
	return cfg.Render(tab)
}

// countingDiscard counts bytes written, so serialization cost is
// timed without file-system noise.
type countingDiscard struct{ n int64 }

func (w *countingDiscard) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

var _ io.Writer = (*countingDiscard)(nil)

// stableCkptBaseline builds an auto-sparse flat network, runs it to
// stabilization, and returns it together with its base snapshot (which
// also arms the dirty-word baseline).
func stableCkptBaseline(g *graph.Graph, seed uint64) (*beep.Network, *beep.Checkpoint, error) {
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, seed, beep.WithEngine(beep.Flat), beep.WithSparse(beep.SparseAuto))
	if err != nil {
		return nil, nil, err
	}
	net.RandomizeAll()
	var probe core.State
	if _, ok := net.Run(1_000_000, func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}); !ok {
		net.Close()
		return nil, nil, fmt.Errorf("no stabilization within 10^6 rounds")
	}
	base, err := net.Checkpoint()
	if err != nil {
		net.Close()
		return nil, nil, err
	}
	return net, base, nil
}
