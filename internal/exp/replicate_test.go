package exp

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestRunReplicatedMatchesFreshRuns is the contract of the reseed
// amortization: every trial of a replication pool must produce exactly
// the result a freshly constructed core.Run with the same seed would
// produce. If Reseed left any state behind (machine levels, stream
// positions, round counters), this comparison breaks.
func TestRunReplicatedMatchesFreshRuns(t *testing.T) {
	g := graph.GNPAvgDegree(96, 6, rng.New(11))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	const trials = 6
	cfg := ReplicatedConfig{
		Graph:    g,
		Protocol: proto,
		Seed:     42,
		Trials:   trials,
		Init:     core.InitRandom,
	}
	res, err := RunReplicated(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < trials; trial++ {
		fresh, err := core.Run(core.RunConfig{
			Graph:    g,
			Protocol: proto,
			Seed:     cfg.seedFor(trial),
			Init:     core.InitRandom,
		})
		if err != nil {
			t.Fatalf("fresh trial %d: %v", trial, err)
		}
		if res.Rounds[trial] != fresh.Rounds || res.MISSize[trial] != fresh.MISSize {
			t.Fatalf("trial %d diverged: replicated (rounds=%d, mis=%d) vs fresh (rounds=%d, mis=%d)",
				trial, res.Rounds[trial], res.MISSize[trial], fresh.Rounds, fresh.MISSize)
		}
	}
}

// TestRunReplicatedWorkerIndependence checks that results are a pure
// function of the seeds, not of the scheduling: 1 worker and 4 workers
// must fill identical trial-indexed slots.
func TestRunReplicatedWorkerIndependence(t *testing.T) {
	g := graph.GNPAvgDegree(80, 5, rng.New(7))
	base := ReplicatedConfig{
		Graph:    g,
		Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
		Seed:     9,
		Trials:   8,
		Init:     core.InitAdversarial,
	}
	one := base
	one.Workers = 1
	four := base
	four.Workers = 4
	r1, err := RunReplicated(one)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunReplicated(four)
	if err != nil {
		t.Fatal(err)
	}
	for trial := range r1.Rounds {
		if r1.Rounds[trial] != r4.Rounds[trial] || r1.MISSize[trial] != r4.MISSize[trial] {
			t.Fatalf("trial %d depends on worker count: 1w (rounds=%d, mis=%d) vs 4w (rounds=%d, mis=%d)",
				trial, r1.Rounds[trial], r1.MISSize[trial], r4.Rounds[trial], r4.MISSize[trial])
		}
	}
}

// TestRunReplicatedRelabel runs replication pools through the
// cache-aware relabelings: every trial must stabilize, and the
// pulled-back MIS must verify against the ORIGINAL topology (runReplica
// enforces this per trial). It also checks the relabeled pools match a
// fresh run on the relabeled graph — relabeling composes with the
// reseed amortization, it does not interfere with it — and that the
// flat-parallel engine accepts the relabeled pool.
func TestRunReplicatedRelabel(t *testing.T) {
	g := graph.GNPAvgDegree(96, 6, rng.New(23))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	for _, tc := range []struct {
		name   string
		ord    graph.Ordering
		engine beep.Engine
	}{
		{"bfs", graph.OrderBFS, 0},
		{"degree", graph.OrderDegree, 0},
		{"bfs-flatparallel", graph.OrderBFS, beep.FlatParallel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := ReplicatedConfig{
				Graph:    g,
				Protocol: proto,
				Seed:     77,
				Trials:   4,
				Init:     core.InitRandom,
				Relabel:  tc.ord,
				Engine:   tc.engine,
			}
			res, err := RunReplicated(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rl := graph.Relabel(g, tc.ord)
			for trial := 0; trial < cfg.Trials; trial++ {
				fresh, err := core.Run(core.RunConfig{
					Graph:    rl.Graph,
					Protocol: proto,
					Seed:     cfg.seedFor(trial),
					Init:     core.InitRandom,
				})
				if err != nil {
					t.Fatalf("fresh relabeled trial %d: %v", trial, err)
				}
				if res.Rounds[trial] != fresh.Rounds || res.MISSize[trial] != fresh.MISSize {
					t.Fatalf("trial %d diverged from fresh relabeled run: (rounds=%d, mis=%d) vs (rounds=%d, mis=%d)",
						trial, res.Rounds[trial], res.MISSize[trial], fresh.Rounds, fresh.MISSize)
				}
			}
		})
	}
}

// TestRunReplicatedBudgetError checks that a trial exhausting its round
// budget surfaces core.ErrNotStabilized instead of recording garbage.
func TestRunReplicatedBudgetError(t *testing.T) {
	g := graph.GNPAvgDegree(64, 6, rng.New(3))
	_, err := RunReplicated(ReplicatedConfig{
		Graph:     g,
		Protocol:  core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
		Seed:      5,
		Trials:    4,
		Init:      core.InitAdversarial,
		MaxRounds: 1,
	})
	if !errors.Is(err, core.ErrNotStabilized) {
		t.Fatalf("want ErrNotStabilized, got %v", err)
	}
}

// TestRunReplicatedValidation covers the config guards.
func TestRunReplicatedValidation(t *testing.T) {
	g := graph.Cycle(8)
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	cases := []ReplicatedConfig{
		{Protocol: proto, Trials: 1},
		{Graph: g, Trials: 1},
		{Graph: g, Protocol: proto, Trials: 0},
	}
	for i, cfg := range cases {
		if _, err := RunReplicated(cfg); err == nil {
			t.Fatalf("case %d: want error, got nil", i)
		}
	}
}

// TestRunE18Smoke executes the tail experiment end to end at smoke
// scale.
func TestRunE18Smoke(t *testing.T) {
	var sb strings.Builder
	cfg := smokeConfig(&sb)
	cfg.Trials = 3
	if err := RunE18(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E18", "p99", "cycle", "adversarial"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E18 output missing %q:\n%s", want, out)
		}
	}
}
