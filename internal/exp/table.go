package exp

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a paper-style results table rendered as aligned text.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed below the table, one per line.
	Notes []string
}

// AddRow appends a row of pre-formatted cells; use the F and I helpers
// to format numbers consistently.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float cell with sensible precision for round counts and
// ratios.
func F(x float64) string {
	switch {
	case x == float64(int64(x)) && x < 1e15:
		return fmt.Sprintf("%.0f", x)
	case x >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.2f", x)
	}
}

// I formats an integer cell.
func I(x int) string { return fmt.Sprintf("%d", x) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(bw, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			if i < len(widths) {
				fmt.Fprintf(bw, "%-*s", widths[i], cell)
			} else {
				fmt.Fprint(bw, cell)
			}
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total > 2 {
		fmt.Fprintln(bw, strings.Repeat("-", total-2))
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		fmt.Fprintf(bw, "note: %s\n", note)
	}
	fmt.Fprintln(bw)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("render table: %w", err)
	}
	return nil
}

// Series is a figure-like data series (x, y pairs per labeled line),
// rendered as a compact text block that plots shape at a glance.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Lines  map[string][]Point
	// order preserves insertion order of line labels.
	order []string
}

// Point is one (x, y) sample.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Add appends a point to the labeled line.
func (s *Series) Add(label string, x, y float64) {
	if s.Lines == nil {
		s.Lines = make(map[string][]Point)
	}
	if _, ok := s.Lines[label]; !ok {
		s.order = append(s.order, label)
	}
	s.Lines[label] = append(s.Lines[label], Point{X: x, Y: y})
}

// Render writes the series as labeled x→y rows.
func (s *Series) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s.Title != "" {
		fmt.Fprintf(bw, "%s   [%s vs %s]\n", s.Title, s.YLabel, s.XLabel)
	}
	for _, label := range s.order {
		fmt.Fprintf(bw, "  %s:", label)
		for _, p := range s.Lines[label] {
			fmt.Fprintf(bw, "  (%s, %s)", F(p.X), F(p.Y))
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintln(bw)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("render series: %w", err)
	}
	return nil
}
