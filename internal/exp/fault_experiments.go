package exp

import (
	"fmt"
	"math"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stab"
)

// RunE6 reproduces the self-stabilization semantics of Section 1.1:
// after a transient fault corrupting k of the n vertex states, the
// system returns to a legal configuration within the same O(log n)
// regime as a fresh stabilization — and while no faults occur, legal
// configurations persist (closure).
func RunE6(cfg Config) error {
	trials := cfg.trials(3, 10)
	sizes := cfg.sizes()
	n := sizes[len(sizes)/2]

	tab := &Table{
		Title:   fmt.Sprintf("E6: recovery rounds after corrupting k states (n=%d, mean over trials)", n),
		Columns: []string{"family", "fault", "k", "initial-stab", "recovery(mean)", "recovery(max)", "changed-verts"},
		Notes: []string{
			"initial-stab: rounds to stabilize from a fully arbitrary configuration",
			"recovery: rounds from fault injection back to a verified legal configuration",
			"changed-verts: vertices whose MIS membership differs after recovery (repair locality)",
		},
	}

	ks := []int{1, int(math.Ceil(math.Sqrt(float64(n)))), n / 10, n}
	for _, fam := range []familyGen{standardFamilies()[0], standardFamilies()[1], standardFamilies()[3]} {
		for _, k := range ks {
			faults := []stab.Fault{stab.RandomFault{K: k}, stab.MISFault{K: k}, stab.ClaimAllFault{K: k}}
			for _, fault := range faults {
				var initial, recovery, changed []float64
				for trial := 0; trial < trials; trial++ {
					gseed := cellSeed(cfg.Seed, 6, uint64(k), uint64(trial), 1)
					g := fam.build(n, rng.New(gseed))
					res, err := stab.MeasureRecovery(stab.RecoveryConfig{
						Graph:    g,
						Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
						Seed:     cellSeed(cfg.Seed, 6, uint64(k), uint64(trial), 2),
						Fault:    fault,
						Repeats:  2,
					})
					if err != nil {
						return fmt.Errorf("E6 %s k=%d: %w", fam.name, k, err)
					}
					initial = append(initial, float64(res.InitialRounds))
					for _, r := range res.RecoveryRounds {
						recovery = append(recovery, float64(r))
					}
					for _, c := range res.Changed {
						changed = append(changed, float64(c))
					}
				}
				rs := Summarize(recovery)
				tab.AddRow(fam.name, fault.Name(), I(k),
					F(Summarize(initial).Mean), F(rs.Mean), F(rs.Max), F(Summarize(changed).Mean))
			}
		}
	}

	// Closure spot-check: stabilize one instance and hold legality for
	// an extended fault-free window.
	g := standardFamilies()[3].build(n, rng.New(cellSeed(cfg.Seed, 6, 99)))
	net, err := beep.NewNetwork(g, core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)), cellSeed(cfg.Seed, 6, 100))
	if err != nil {
		return err
	}
	defer net.Close()
	net.RandomizeAll()
	var probe core.State
	stop := func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}
	if _, ok := net.Run(1000000, stop); !ok {
		return fmt.Errorf("E6 closure: instance did not stabilize")
	}
	closureRounds := 10 * Log2(float64(n))
	if err := stab.CheckClosure(net, int(closureRounds)); err != nil {
		return fmt.Errorf("E6 closure violated: %w", err)
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("closure: legality and MIS membership held for %d fault-free rounds after stabilization", int(closureRounds)))

	return cfg.Render(tab)
}

// RunE7 probes the two key lemmas empirically.
//
// Lemma 3.5 says the waiting time τ(v) for the next platinum round has
// an exponential tail; the first table reports the empirical survival
// function of platinum waiting times pooled over vertices, whose
// successive-decade ratios should be roughly constant (geometric decay).
//
// Lemma 3.6(b) says a prominence interval that ends without
// stabilization overshoots ℓmax(u) by more than x with probability at
// most η′·2^-x. Part (a) shows such σout events absent under uniform
// caps (the η′ = 0 case); part (b) provokes them with shrunken slack
// and reports the survival of their lengths, whose geometric decay is
// the bound's shape.
func RunE7(cfg Config) error {
	trials := cfg.trials(3, 10)
	n := 256
	if cfg.Full {
		n = 1024
	}

	// Part (a): waiting times under the Theorem 2.1 setting (uniform
	// caps) on a random graph, the regime where a single platinum round
	// stabilizes a vertex.
	var aggA lemmaSamples
	for trial := 0; trial < trials; trial++ {
		g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 7, uint64(trial), 1)))
		proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
		s, err := instrumentLemmas(g, proto, cellSeed(cfg.Seed, 7, uint64(trial), 2))
		if err != nil {
			return fmt.Errorf("E7a trial %d: %w", trial, err)
		}
		aggA.merge(s)
	}

	// Part (b): σout intervals exist only with heterogeneous caps
	// (with uniform ℓmax, Lemma 3.6(a) holds with η′ = 0, so a
	// prominent vertex always stabilizes), and escaping prominence
	// requires ~ℓmax consecutive beeping rounds from a decaying
	// neighbor — probability ≈ 2^(-ℓmax²/2), unobservably small at the
	// theorems' c1 >= 30. To exercise the σout path at all we shrink
	// the slack to c1 = 2 on a heavy-tailed graph; the lemma's tail
	// shape is then visible while the theorem-scale setting (part a)
	// shows the events absent, as the bound predicts.
	var aggB lemmaSamples
	for trial := 0; trial < trials; trial++ {
		g := graph.PreferentialAttachment(n, 2, rng.New(cellSeed(cfg.Seed, 71, uint64(trial), 1)))
		proto := core.NewAlg1(core.OwnDegree(2))
		s, err := instrumentLemmasFrom(g, proto, cellSeed(cfg.Seed, 71, uint64(trial), 2), false)
		if err != nil {
			return fmt.Errorf("E7b trial %d: %w", trial, err)
		}
		aggB.merge(s)
	}

	tabTau := survivalTable("E7a: platinum-round waiting time τ (Lemma 3.5, uniform ℓmax) — pooled survival", "k (rounds)", aggA.waits,
		[]float64{1, 2, 4, 8, 16, 32, 64})
	tabTau.Notes = append(tabTau.Notes,
		fmt.Sprintf("σout intervals under uniform caps: %d (Lemma 3.6(a) with η′=0 predicts none)", len(aggA.intervals)),
		"roughly constant ratio between consecutive rows = geometric tail, as Lemma 3.5 predicts")
	if err := cfg.Render(tabTau); err != nil {
		return err
	}

	tabSig := survivalTable("E7b: length of σout prominence intervals (Lemma 3.6, per-vertex ℓmax) — survival", "length (rounds)", aggB.intervals,
		[]float64{1, 2, 4, 8, 12, 16, 24})
	meanCap := Summarize(aggB.caps).Mean
	tabSig.Notes = append(tabSig.Notes,
		fmt.Sprintf("mean ℓmax over sampled σout vertices: %.1f; intervals reaching ℓmax: %d of %d", meanCap, aggB.overshoots, len(aggB.intervals)),
		"measured with slack c1=2 and fault-induced initial prominence so σout events occur at all;",
		"the survival halves (or faster) per threshold, the geometric shape of the Lemma 3.6(b) bound η′·2^-x;",
		"at the theorems' c1 >= 30 the events vanish entirely (see E7a note), as the bound predicts")
	return cfg.Render(tabSig)
}

// lemmaSamples aggregates the per-run instrumentation of RunE7.
type lemmaSamples struct {
	// waits are the lengths of maximal non-platinum gaps (Lemma 3.5 τ).
	waits []float64
	// intervals are the lengths of prominence intervals that ended
	// without the vertex stabilizing (the σout case of Lemma 3.6),
	// with caps the corresponding ℓmax values and overshoots counting
	// intervals reaching ℓmax.
	intervals  []float64
	caps       []float64
	overshoots int
}

func (s *lemmaSamples) merge(o lemmaSamples) {
	s.waits = append(s.waits, o.waits...)
	s.intervals = append(s.intervals, o.intervals...)
	s.caps = append(s.caps, o.caps...)
	s.overshoots += o.overshoots
}

// instrumentLemmas runs one instance from an arbitrary configuration,
// warms up past the Lemma 3.1 horizon, then records per-vertex platinum
// waiting times and σout prominence intervals until stabilization.
func instrumentLemmas(g *graph.Graph, proto beep.Protocol, seed uint64) (lemmaSamples, error) {
	return instrumentLemmasFrom(g, proto, seed, true)
}

// instrumentLemmasFrom optionally skips the Lemma 3.1 warmup horizon.
// Skipping matches the lemmas' standing assumption t > max ℓmax(w);
// not skipping additionally captures the fault-induced prominence
// intervals created by the arbitrary initial configuration itself
// (adjacent vertices both claiming membership), which is where σout
// events actually occur in practice.
func instrumentLemmasFrom(g *graph.Graph, proto beep.Protocol, seed uint64, skipWarmup bool) (lemmaSamples, error) {
	var out lemmaSamples
	n := g.N()
	net, err := beep.NewNetwork(g, proto, seed)
	if err != nil {
		return out, err
	}
	defer net.Close()
	net.RandomizeAll()

	maxCap := 0
	for v := 0; v < n; v++ {
		if c := net.Machine(v).(core.Leveled).Cap(); c > maxCap {
			maxCap = c
		}
	}
	if skipWarmup {
		for r := 0; r <= maxCap; r++ {
			net.Step()
		}
	}

	nonPlatinumGap := make([]int, n)
	prominentSince := make([]int, n) // -1: not prominent
	for v := range prominentSince {
		prominentSince[v] = -1
	}
	const horizon = 4000
	var st core.State
	stable := make([]bool, n)
	for r := 0; r < horizon; r++ {
		if err := st.Refresh(net); err != nil {
			return out, err
		}
		st.FillStableMask(stable)
		for v := 0; v < n; v++ {
			if stable[v] {
				continue
			}
			if st.PlatinumFor(v) {
				if nonPlatinumGap[v] > 0 {
					out.waits = append(out.waits, float64(nonPlatinumGap[v]))
				}
				nonPlatinumGap[v] = 0
			} else {
				nonPlatinumGap[v]++
			}
			if st.Prominent(v) {
				if prominentSince[v] < 0 {
					prominentSince[v] = r
				}
			} else if prominentSince[v] >= 0 {
				length := r - prominentSince[v]
				out.intervals = append(out.intervals, float64(length))
				out.caps = append(out.caps, float64(st.Cap(v)))
				if length >= st.Cap(v) {
					out.overshoots++
				}
				prominentSince[v] = -1
			}
		}
		if st.Stabilized() {
			return out, nil
		}
		net.Step()
	}
	return out, fmt.Errorf("no stabilization within the %d-round instrumentation horizon", horizon)
}

// survivalTable renders P[X >= k] for the given thresholds.
func survivalTable(title, xlabel string, xs []float64, thresholds []float64) *Table {
	tab := &Table{
		Title:   title,
		Columns: []string{xlabel, "P[X >= k]", "count"},
	}
	if len(xs) == 0 {
		tab.Notes = append(tab.Notes, "no samples collected")
		return tab
	}
	total := float64(len(xs))
	for _, k := range thresholds {
		count := 0
		for _, x := range xs {
			if x >= k {
				count++
			}
		}
		tab.AddRow(F(k), fmt.Sprintf("%.4f", float64(count)/total), I(count))
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("samples: %d", len(xs)))
	return tab
}
