package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// compareSizes returns the (smaller) size sweep used by the baseline
// comparisons, which include dense topologies.
func compareSizes(cfg Config) []int {
	if cfg.Full {
		return []int{64, 128, 256, 512, 1024, 2048}
	}
	return []int{32, 64, 128, 256}
}

// RunE4 reproduces the comparison with Jeavons–Scott–Xu [17]:
//
//  1. From the baseline's defined fresh start, Algorithm 1 pays only a
//     small constant factor over Jeavons et al. (same O(log n) shape).
//  2. From corrupted states, Algorithm 1 always recovers to a legal MIS
//     while the baseline frequently terminates on an illegal output or
//     fails to terminate — it is not self-stabilizing.
func RunE4(cfg Config) error {
	trials := cfg.trials(5, 20)
	budget := 200000

	tabFresh := &Table{
		Title:   "E4a: fresh start — rounds to completion (mean over trials)",
		Columns: []string{"family", "n", "jeavons", "alg1-fresh", "alg1-random", "alg1/jeavons"},
	}
	tabFail := &Table{
		Title:   "E4b: corrupted start — outcome over trials",
		Columns: []string{"family", "n", "jeavons-illegal", "jeavons-stuck", "jeavons-ok", "alg1-recovered"},
		Notes: []string{
			"jeavons-illegal: terminated with all vertices decided on a non-MIS output",
			"jeavons-stuck: round budget exhausted with undecided vertices",
			"alg1-recovered: stabilized to a verified MIS from the same kind of arbitrary states",
		},
	}

	for _, fam := range denseFamilies() {
		for _, n := range compareSizes(cfg) {
			var jv, a1f, a1r []float64
			illegal, stuck, okCount, recovered := 0, 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				gseed := cellSeed(cfg.Seed, 4, uint64(n), uint64(trial), 1)
				g := fam.build(n, rng.New(gseed))
				seed := cellSeed(cfg.Seed, 4, uint64(n), uint64(trial), 2)

				jres, err := baseline.RunBeeping(g, baseline.Jeavons{}, seed, budget, false, false)
				if err != nil {
					return fmt.Errorf("E4 jeavons fresh %s n=%d: %w", fam.name, n, err)
				}
				jv = append(jv, float64(jres.Rounds))

				proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
				fres, err := core.Run(core.RunConfig{Graph: g, Protocol: proto, Seed: seed, Init: core.InitFresh})
				if err != nil {
					return fmt.Errorf("E4 alg1 fresh %s n=%d: %w", fam.name, n, err)
				}
				a1f = append(a1f, float64(fres.Rounds))

				proto = core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
				rres, err := core.Run(core.RunConfig{Graph: g, Protocol: proto, Seed: seed ^ 0xff, Init: core.InitRandom})
				if err != nil {
					return fmt.Errorf("E4 alg1 random %s n=%d: %w", fam.name, n, err)
				}
				a1r = append(a1r, float64(rres.Rounds))
				recovered++

				// Jeavons from an arbitrary configuration, bounded budget.
				cres, err := baseline.RunBeeping(g, baseline.Jeavons{}, seed^0xabc, 5000, true, false)
				switch {
				case err != nil:
					stuck++
				case !cres.Valid:
					illegal++
				default:
					okCount++
				}
			}
			jm, fm, rm := Summarize(jv).Mean, Summarize(a1f).Mean, Summarize(a1r).Mean
			ratio := 0.0
			if jm > 0 {
				ratio = fm / jm
			}
			tabFresh.AddRow(fam.name, I(n), F(jm), F(fm), F(rm), F(ratio))
			tabFail.AddRow(fam.name, I(n), I(illegal), I(stuck), I(okCount), I(recovered))
		}
	}
	if err := cfg.Render(tabFresh); err != nil {
		return err
	}
	return cfg.Render(tabFail)
}

// RunE5 reproduces the comparison with the Afek et al. regime [1]: both
// algorithms are self-stabilizing, but the restart-based baseline with
// knowledge of N pays extra logarithmic factors, so its rounds grow
// visibly faster than Algorithm 1's and the ratio widens with n.
func RunE5(cfg Config) error {
	trials := cfg.trials(3, 10)
	budget := 2000000

	tab := &Table{
		Title:   "E5: self-stabilizing round counts from arbitrary states (mean)",
		Columns: []string{"family", "n", "alg1", "afek-style", "ratio", "alg1/log2n", "afek/log2n"},
		Notes: []string{
			"afek-style: restart-ramp baseline with knowledge of N (see internal/baseline/afek.go)",
			"ratio growing with n reproduces the O(log²N·log n) vs O(log n) separation",
		},
	}
	series := &Series{Title: "E5", XLabel: "n", YLabel: "rounds (mean)"}

	for _, fam := range denseFamilies() {
		for _, n := range compareSizes(cfg) {
			var a1, afek []float64
			for trial := 0; trial < trials; trial++ {
				gseed := cellSeed(cfg.Seed, 5, uint64(n), uint64(trial), 1)
				g := fam.build(n, rng.New(gseed))
				seed := cellSeed(cfg.Seed, 5, uint64(n), uint64(trial), 2)

				proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
				res, err := core.Run(core.RunConfig{Graph: g, Protocol: proto, Seed: seed, Init: core.InitRandom})
				if err != nil {
					return fmt.Errorf("E5 alg1 %s n=%d: %w", fam.name, n, err)
				}
				a1 = append(a1, float64(res.Rounds))

				ares, err := baseline.RunBeeping(g, baseline.NewAfekStyle(n), seed, budget, true, true)
				if err != nil {
					return fmt.Errorf("E5 afek %s n=%d: %w", fam.name, n, err)
				}
				afek = append(afek, float64(ares.Rounds))
			}
			am, bm := Summarize(a1).Mean, Summarize(afek).Mean
			ratio := 0.0
			if am > 0 {
				ratio = bm / am
			}
			l := Log2(float64(n))
			tab.AddRow(fam.name, I(n), F(am), F(bm), F(ratio), F(am/l), F(bm/l))
			series.Add(fam.name+"/alg1", float64(n), am)
			series.Add(fam.name+"/afek", float64(n), bm)
		}
	}
	if err := cfg.Render(tab); err != nil {
		return err
	}
	return cfg.Render(series)
}

// lubyReference measures Luby and greedy MIS sizes/rounds for E8.
func lubyReference(cfg Config, fam familyGen, n int, trials int) (lubyRounds, lubySize, alg1Size, greedySize float64, err error) {
	var lr, ls, as, gs []float64
	for trial := 0; trial < trials; trial++ {
		gseed := cellSeed(cfg.Seed, 8, uint64(n), uint64(trial), 1)
		g := fam.build(n, rng.New(gseed))
		seed := cellSeed(cfg.Seed, 8, uint64(n), uint64(trial), 2)

		res, lerr := baseline.RunLuby(g, seed, 100000)
		if lerr != nil {
			return 0, 0, 0, 0, fmt.Errorf("luby %s n=%d: %w", fam.name, n, lerr)
		}
		lr = append(lr, float64(res.Rounds))
		ls = append(ls, float64(graph.CountTrue(res.MIS)))

		proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
		ares, aerr := core.Run(core.RunConfig{Graph: g, Protocol: proto, Seed: seed, Init: core.InitRandom})
		if aerr != nil {
			return 0, 0, 0, 0, fmt.Errorf("alg1 %s n=%d: %w", fam.name, n, aerr)
		}
		as = append(as, float64(ares.MISSize))
		gs = append(gs, float64(graph.CountTrue(g.GreedyMIS())))
	}
	return Summarize(lr).Mean, Summarize(ls).Mean, Summarize(as).Mean, Summarize(gs).Mean, nil
}
