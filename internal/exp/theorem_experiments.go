package exp

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunF1 regenerates Figure 1: the beeping probability p_t(v) implied by
// each level ℓ_t(v) for a representative cap.
func RunF1(cfg Config) error {
	const cap = 16
	series := &Series{
		Title:  "Figure 1: p_t(v) vs ℓ_t(v) (ℓmax = 16)",
		XLabel: "level ℓ",
		YLabel: "beeping probability p",
	}
	tab := &Table{
		Title:   "Figure 1 data: activation function p(ℓ), ℓmax = 16",
		Columns: []string{"ℓ", "p(ℓ)"},
	}
	for l := -cap; l <= cap; l++ {
		p := core.BeepProb(l, cap)
		series.Add("p", float64(l), p)
		tab.AddRow(I(l), fmt.Sprintf("%.6g", p))
	}
	tab.Notes = append(tab.Notes,
		"p = 1 for ℓ <= 0 (committed MIS candidates beep every round)",
		"p = 2^-ℓ for 0 < ℓ < ℓmax, p = 0 at ℓ = ℓmax (stable non-MIS vertices are silent)")
	if err := cfg.Render(tab); err != nil {
		return err
	}
	return cfg.Render(series)
}

// heterogeneousFamilies stresses per-vertex degree knowledge (Theorem
// 2.2) with mixed-degree topologies on top of the standard sweep.
func heterogeneousFamilies() []familyGen {
	fams := standardFamilies()
	fams = append(fams,
		familyGen{name: "caterpillar", build: func(n int, _ *rng.Source) *graph.Graph { return graph.Caterpillar(n) }},
	)
	return fams
}

// RunE1 validates Theorem 2.1: Algorithm 1 with shared knowledge of the
// maximum degree stabilizes from arbitrary configurations in O(log n)
// rounds. The normalized column rounds/log2(n) should be flat in n.
func RunE1(cfg Config) error {
	spec := sweepSpec{
		expID:    1,
		families: standardFamilies(),
		sizes:    cfg.sizes(),
		trials:   cfg.trials(5, 20),
		protoFor: func(*graph.Graph) beep.Protocol {
			return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
		},
		init:      core.InitRandom,
		normLabel: "rounds/log2n",
		norm:      func(n int) float64 { return Log2(float64(n)) },
	}
	return runSweep(cfg, spec, "E1: Algorithm 1, known Δ (Theorem 2.1), arbitrary initial states")
}

// RunE2 validates Theorem 2.2: Algorithm 1 where each vertex knows only
// its own degree stabilizes in O(log n · log log n) rounds. The
// normalized column divides by log2 n · loglog2 n and should stay
// bounded; the per-family notes also report the plain rounds/log2 n
// spread for contrast with E1.
func RunE2(cfg Config) error {
	spec := sweepSpec{
		expID:    2,
		families: heterogeneousFamilies(),
		sizes:    cfg.sizes(),
		trials:   cfg.trials(5, 20),
		protoFor: func(*graph.Graph) beep.Protocol {
			return core.NewAlg1(core.OwnDegree(core.DefaultC1OwnDegree))
		},
		init:      core.InitRandom,
		normLabel: "rounds/(log2n·llog2n)",
		norm:      func(n int) float64 { return Log2(float64(n)) * LogLog2(float64(n)) },
	}
	return runSweep(cfg, spec, "E2: Algorithm 1, own degree (Theorem 2.2), arbitrary initial states")
}

// RunE3 validates Corollary 2.3: Algorithm 2 on two channels with 1-hop
// neighborhood degree knowledge stabilizes in O(log n).
func RunE3(cfg Config) error {
	spec := sweepSpec{
		expID:    3,
		families: standardFamilies(),
		sizes:    cfg.sizes(),
		trials:   cfg.trials(5, 20),
		protoFor: func(*graph.Graph) beep.Protocol {
			return core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop))
		},
		init:      core.InitRandom,
		normLabel: "rounds/log2n",
		norm:      func(n int) float64 { return Log2(float64(n)) },
	}
	return runSweep(cfg, spec, "E3: Algorithm 2, two channels, deg₂ knowledge (Corollary 2.3)")
}
