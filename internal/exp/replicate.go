package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ReplicatedConfig describes a pool of independent runs of one instance
// (same graph, same protocol, per-trial seeds) executed to
// stabilization. It is the high-replication counterpart of core.Run:
// instead of rebuilding the network for every trial — re-validating the
// CSR, reallocating the machine slab and the per-vertex random streams —
// each worker builds ONE network and re-seeds it in place between
// trials (beep.Network.Reseed), so per-trial cost is dominated by the
// rounds themselves. At n=4096 this cuts per-trial overhead by roughly
// the full construction cost, which is what makes ≥1000 replications
// per cell affordable (experiment E18).
type ReplicatedConfig struct {
	Graph *graph.Graph
	// Protocol must support in-place re-initialization (its bulk state
	// implements beep.FlatReiniter), which all core protocols do.
	Protocol beep.Protocol
	// Seed is the root seed. Trial t executes with SeedFn(t) when SeedFn
	// is non-nil, otherwise with a cellSeed derivation of (Seed, t) —
	// either way trials are deterministic and independent of scheduling.
	Seed   uint64
	SeedFn func(trial int) uint64
	Trials int
	// Init is applied after every reseed (default InitFresh).
	Init core.InitMode
	// MaxRounds bounds each trial; 0 selects the same generous default
	// as core.Run.
	MaxRounds int
	// CheckEvery sets stabilization-probe granularity (0 = every round).
	CheckEvery int
	// Engine defaults to Sequential, which auto-upgrades to the flat
	// kernels when the protocol provides them. Parallelism across the
	// replication pool beats parallelism inside one round, so the
	// single-threaded engines are the right default here.
	Engine beep.Engine
	// Options are extra network options (noise, sleep, batched
	// sampling, …) applied to every worker's network.
	Options []beep.Option
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
	// Relabel, when not OrderNone, runs every trial on a cache-aware
	// relabeling of Graph (graph.Relabel) and maps the MIS back to the
	// original identifiers before verification. Relabeling changes
	// which private stream an original vertex draws from, so for a
	// fixed seed the trial outcomes differ from the unrelabeled pool in
	// the per-trial draws (not in distribution) — which is exactly why
	// it is an opt-in, separately measured transform.
	Relabel graph.Ordering
}

// ReplicatedResult holds the per-trial outcomes, trial-indexed.
type ReplicatedResult struct {
	// Rounds[t] is the stabilization time of trial t.
	Rounds []int
	// MISSize[t] is the size of the verified MIS of trial t.
	MISSize []int
}

// seedFor derives the seed of one trial.
func (cfg *ReplicatedConfig) seedFor(trial int) uint64 {
	if cfg.SeedFn != nil {
		return cfg.SeedFn(trial)
	}
	return cellSeed(cfg.Seed, 0x7265706c, uint64(trial)) // "repl"
}

// RunReplicated executes cfg.Trials independent stabilization runs and
// returns their trial-indexed outcomes. Results are deterministic in
// (Graph, Protocol, seeds) and independent of the worker count, because
// every trial derives all of its randomness from its own seed.
//
// On the first trial error the dispatcher stops handing out new trials
// (mirroring runTrials): in-flight trials finish, the first error is
// returned.
func RunReplicated(cfg ReplicatedConfig) (*ReplicatedResult, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("exp: RunReplicated: nil graph")
	}
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("exp: RunReplicated: nil protocol")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("exp: RunReplicated: trials must be positive, got %d", cfg.Trials)
	}
	res := &ReplicatedResult{
		Rounds:  make([]int, cfg.Trials),
		MISSize: make([]int, cfg.Trials),
	}
	// Optional cache-aware relabeling: computed once, shared read-only
	// by every worker. Trials then execute on rl.Graph and pull the MIS
	// back through the inverse permutation for verification against the
	// ORIGINAL topology (the stronger check: a bug in the permutation
	// or the pullback fails verification even if the relabeled-space
	// MIS is legal).
	var rl *graph.Relabeling
	if cfg.Relabel != graph.OrderNone {
		rl = graph.Relabel(cfg.Graph, cfg.Relabel)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Trials {
		workers = cfg.Trials
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	report := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		failed.Store(true)
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			net, err := newReplicaNetwork(&cfg, rl)
			if err != nil {
				report(err)
				for range next { // keep the dispatcher unblocked
				}
				return
			}
			defer net.Close()
			var probe core.State
			var scratch misScratch
			for trial := range next {
				if err := runReplica(&cfg, net, rl, &probe, &scratch, trial, res); err != nil {
					report(fmt.Errorf("exp: RunReplicated trial %d: %w", trial, err))
				}
			}
		}()
	}
	for t := 0; t < cfg.Trials && !failed.Load(); t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// newReplicaNetwork builds one worker's reusable network (on the
// relabeled topology when rl is set). The construction seed is
// irrelevant: every trial reseeds before running.
func newReplicaNetwork(cfg *ReplicatedConfig, rl *graph.Relabeling) (*beep.Network, error) {
	engine := cfg.Engine
	if engine == 0 {
		engine = beep.Sequential
	}
	g := cfg.Graph
	if rl != nil {
		g = rl.Graph
	}
	opts := append([]beep.Option{beep.WithEngine(engine)}, cfg.Options...)
	return beep.NewNetwork(g, cfg.Protocol, cfg.seedFor(0), opts...)
}

// misScratch holds one worker's reusable pullback buffers, so the
// relabeled verification path stays allocation-free across trials.
type misScratch struct {
	mask, back []bool
}

// runReplica executes one trial on a reused network: reseed, re-init,
// run to stabilization, verify, record. probe is reused across trials so
// the per-round stabilization check stays allocation-free.
func runReplica(cfg *ReplicatedConfig, net *beep.Network, rl *graph.Relabeling, probe *core.State, scratch *misScratch, trial int, res *ReplicatedResult) error {
	if err := net.Reseed(cfg.seedFor(trial)); err != nil {
		return err
	}
	if err := core.ApplyInit(net, cfg.Init); err != nil {
		return err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultReplicaBudget(net.N())
	}
	checkEvery := cfg.CheckEvery
	if checkEvery <= 0 {
		checkEvery = 1
	}
	stop := func() bool {
		if net.Round()%checkEvery != 0 {
			return false
		}
		return probe.Refresh(net) == nil && probe.Stabilized()
	}
	rounds, ok := net.Run(maxRounds, stop)
	if err := probe.Refresh(net); err != nil {
		return err
	}
	if !ok || !probe.Stabilized() {
		return fmt.Errorf("%w: %d rounds on %s (n=%d, stable %d/%d)",
			core.ErrNotStabilized, rounds, net.Graph().Name(), net.N(), probe.StableCount(), net.N())
	}
	if err := probe.VerifyMIS(); err != nil {
		return fmt.Errorf("stabilized to an illegal state: %w", err)
	}
	if rl != nil {
		// Pull the MIS back through the inverse permutation and verify
		// it against the ORIGINAL topology, not just the relabeled one.
		n := net.N()
		if cap(scratch.mask) < n {
			scratch.mask = make([]bool, n)
			scratch.back = make([]bool, n)
		}
		mask, back := scratch.mask[:n], scratch.back[:n]
		for v := 0; v < n; v++ {
			mask[v] = probe.InMIS(v)
		}
		for old, nw := range rl.NewID {
			back[old] = mask[nw]
		}
		if err := cfg.Graph.VerifyMIS(back); err != nil {
			return fmt.Errorf("relabeled MIS does not pull back to a legal MIS on the original graph: %w", err)
		}
	}
	mis := 0
	for v := 0; v < net.N(); v++ {
		if probe.InMIS(v) {
			mis++
		}
	}
	res.Rounds[trial] = rounds
	res.MISSize[trial] = mis
	return nil
}

// defaultReplicaBudget mirrors core.Run's default round budget.
func defaultReplicaBudget(n int) int {
	log := 0
	for x := n; x > 1; x >>= 1 {
		log++
	}
	return 1000*(log+1) + 1000
}

// RunE18 measures the stabilization-time TAIL at high replication: with
// ≥1000 independent runs per cell (made affordable by RunReplicated's
// reseed-in-place amortization and the flat round kernels), the p99 and
// max become meaningful, not just the mean — exactly the regime where
// the w.h.p. statements of Theorems 2.1 and the Section 3 lemmas live.
// The table reports, per (family, init) cell, the bootstrap 95% CI of
// the mean and the tail quantiles normalized by log2 n.
func RunE18(cfg Config) error {
	trials := cfg.trials(1000, 5000)
	sizes := cfg.sizes()
	n := sizes[len(sizes)/2]

	tab := &Table{
		Title:   fmt.Sprintf("E18: stabilization-time tails at %d replications per cell (n=%d, Alg 1, known Δ)", trials, n),
		Columns: []string{"family", "init", "mean", "ci95", "p50", "p90", "p99", "max", "max/log2n", "mis(mean)"},
		Notes: []string{
			"each cell is an independent replication pool: one reusable network per worker, reseeded per trial (exp.RunReplicated)",
			"tail quantiles need the replication count: at 10 trials p99 is noise, at ≥1000 it is a measurement",
			"max/log2n staying flat across cells is the empirical face of the O(log n) w.h.p. bound",
		},
	}

	fams := standardFamilies()
	for fi, fam := range []familyGen{fams[0], fams[3], fams[5]} { // cycle, gnp-avg8, ba-m2
		g := fam.build(n, rng.New(cellSeed(cfg.Seed, 18, uint64(fi), 1)))
		for _, init := range []core.InitMode{core.InitRandom, core.InitAdversarial} {
			root := cellSeed(cfg.Seed, 18, uint64(fi), uint64(init), 2)
			res, err := RunReplicated(ReplicatedConfig{
				Graph:    g,
				Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
				Seed:     root,
				Trials:   trials,
				Init:     init,
				Workers:  cfg.Workers,
			})
			if err != nil {
				return fmt.Errorf("E18 %s/%s: %w", fam.name, init, err)
			}
			xs := make([]float64, len(res.Rounds))
			misSum := 0
			for i, r := range res.Rounds {
				xs[i] = float64(r)
				misSum += res.MISSize[i]
			}
			s := Summarize(xs)
			sorted := make([]float64, len(xs))
			copy(sorted, xs)
			sort.Float64s(sorted)
			p99 := quantile(sorted, 0.99)
			ci := BootstrapMeanCI(xs, 0.95, 300, rng.New(cellSeed(root, 3)))
			tab.AddRow(fam.name, init.String(),
				F(s.Mean), ci.String(), F(s.Median), F(s.P90), F(p99), F(s.Max),
				F(s.Max/Log2(float64(n))), F(float64(misSum)/float64(len(res.MISSize))))
		}
	}
	return cfg.Render(tab)
}
