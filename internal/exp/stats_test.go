package exp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almostEq(s.Mean, 3) || !almostEq(s.Median, 3) ||
		!almostEq(s.Min, 1) || !almostEq(s.Max, 5) {
		t.Fatalf("summary %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2)) {
		t.Fatalf("std %v", s.Std)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Median != 7 || s.Std != 0 {
		t.Fatalf("singleton summary %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := quantile(sorted, 0.5); !almostEq(q, 5) {
		t.Fatalf("median of {0,10} = %v", q)
	}
	if q := quantile(sorted, 0.9); !almostEq(q, 9) {
		t.Fatalf("p90 of {0,10} = %v", q)
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestLogHelpers(t *testing.T) {
	if !almostEq(Log2(8), 3) {
		t.Fatal("Log2(8)")
	}
	if Log2(1) != 1 || Log2(0) != 1 {
		t.Fatal("Log2 clamp")
	}
	if !almostEq(LogLog2(256), 3) {
		t.Fatalf("LogLog2(256) = %v", LogLog2(256))
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2) || !almostEq(fit.Intercept, 1) || !almostEq(fit.R2, 1) {
		t.Fatalf("fit %+v", fit)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("zero x-variance accepted")
	}
}

func TestFitLinearNoisyR2(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1, 11.9} // ~2x
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v for nearly-linear data", fit.R2)
	}
}

func TestJudgeScalingFlat(t *testing.T) {
	// rounds exactly proportional to log2 n → spread 1.
	sizes := []int{64, 256, 1024, 4096}
	rounds := make([]float64, len(sizes))
	for i, n := range sizes {
		rounds[i] = 10 * Log2(float64(n))
	}
	v, err := JudgeScaling(sizes, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v.RatioLogSpread, 1) {
		t.Fatalf("log spread %v", v.RatioLogSpread)
	}
	// For pure log data the over-normalized column rounds/(log·loglog)
	// still varies by exactly the loglog ratio of the extreme sizes.
	wantSpread := LogLog2(4096) / LogLog2(64)
	if !almostEq(v.RatioLogLogSpread, wantSpread) {
		t.Fatalf("loglog spread %v, want %v", v.RatioLogLogSpread, wantSpread)
	}
	if v.FitLog.R2 < 0.999 {
		t.Fatalf("fit R2 %v", v.FitLog.R2)
	}
}

func TestJudgeScalingErrors(t *testing.T) {
	if _, err := JudgeScaling([]int{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := JudgeScaling([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatch accepted")
	}
}

// Property: Summarize bounds are consistent (min <= median <= p90 <= max,
// mean within [min, max]).
func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.P90+1e-9 &&
			s.P90 <= s.Max+1e-9 && s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCellSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for a := uint64(0); a < 10; a++ {
		for b := uint64(0); b < 10; b++ {
			s := cellSeed(1, a, b)
			if seen[s] {
				t.Fatalf("collision at (%d,%d)", a, b)
			}
			seen[s] = true
		}
	}
	if cellSeed(1, 2, 3) != cellSeed(1, 2, 3) {
		t.Fatal("cellSeed not deterministic")
	}
	if cellSeed(1, 2, 3) == cellSeed(2, 2, 3) {
		t.Fatal("root seed ignored")
	}
}

func TestRunTrials(t *testing.T) {
	out := make([]int, 50)
	err := runTrials(50, func(trial int) error {
		out[trial] = trial * trial
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	// Zero and one trials.
	if err := runTrials(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	called := false
	if err := runTrials(1, func(int) error { called = true; return nil }); err != nil || !called {
		t.Fatal("single trial not run inline")
	}
}

func TestRunTrialsPropagatesError(t *testing.T) {
	err := runTrials(20, func(trial int) error {
		if trial == 7 {
			return errSentinel
		}
		return nil
	})
	if err != errSentinel {
		t.Fatalf("err = %v", err)
	}
}

var errSentinel = errors.New("sentinel")
