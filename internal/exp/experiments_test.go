package exp

import (
	"io"
	"strings"
	"testing"
)

// smokeConfig is a tiny configuration so every experiment's full code
// path executes in test time.
func smokeConfig(out io.Writer) Config {
	return Config{Seed: 1, Trials: 1, Out: out}
}

func TestRunF1(t *testing.T) {
	var sb strings.Builder
	if err := RunF1(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "activation", "0.5", "p(ℓ)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("F1 output missing %q:\n%s", want, out)
		}
	}
}

// miniSweep builds a sweepSpec pointing at the smallest sizes so E1-E3
// logic is exercised quickly.
func TestRunSweepSmoke(t *testing.T) {
	var sb strings.Builder
	cfg := smokeConfig(&sb)
	cfg.Trials = 1
	for _, runner := range []struct {
		name string
		run  func(Config) error
	}{
		{"E1", RunE1}, {"E2", RunE2}, {"E3", RunE3},
	} {
		sb.Reset()
		// Shrink the sweep via a config whose sizes() we cannot override,
		// so instead call the experiment as-is only in -short mode off.
		if testing.Short() {
			t.Skip("sweep smoke skipped in -short")
		}
		cfgSmall := cfg
		if err := runner.run(cfgSmall); err != nil {
			t.Fatalf("%s: %v", runner.name, err)
		}
		out := sb.String()
		if !strings.Contains(out, "rounds(mean)") || !strings.Contains(out, "cycle") {
			t.Fatalf("%s output malformed:\n%s", runner.name, out)
		}
		if !strings.Contains(out, "spread of rounds/log2(n)") {
			t.Fatalf("%s missing scaling notes:\n%s", runner.name, out)
		}
	}
}

func TestRunE4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE4(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E4a", "E4b", "jeavons", "alg1-recovered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E4 output missing %q", want)
		}
	}
}

func TestRunE5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE5(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "afek-style") {
		t.Fatalf("E5 output malformed:\n%s", sb.String())
	}
}

func TestRunE6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE6(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"recovery", "closure", "random-", "claim-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E6 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE7(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E7a", "E7b", "P[X >= k]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E7 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE8(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E8a", "E8b", "E8c", "E8d", "E8e", "luby-rounds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E8 output missing %q", want)
		}
	}
}

func TestSurvivalTableEmpty(t *testing.T) {
	tab := survivalTable("t", "x", nil, []float64{0, 1})
	if len(tab.Rows) != 0 || len(tab.Notes) == 0 {
		t.Fatalf("empty survival table %+v", tab)
	}
}

func TestSurvivalTableCounts(t *testing.T) {
	tab := survivalTable("t", "x", []float64{0, 1, 2, 3}, []float64{0, 2, 5})
	if tab.Rows[0][2] != "4" || tab.Rows[1][2] != "2" || tab.Rows[2][2] != "0" {
		t.Fatalf("survival counts %+v", tab.Rows)
	}
}

func TestRunE9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	cfg := smokeConfig(&sb)
	if err := RunE9(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"listening noise", "func-stab", "member-flips"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E9 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE10(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"zero-knowledge", "oracle-rounds", "adaptive-ℓmax"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E10 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE11(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E11a", "E11b", "stable/fresh", "stable/adversarial", "diam"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E11 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE12(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"duty-cycling", "func-stab", "member-flips"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E12 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE13(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"energy", "steady-beeps/round", "blind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E13 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE14(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"availability", "longest-outage", "mean-recovery"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E14 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE15Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE15(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"topology churn", "flap", "growth", "crash", "partition-heal", "adjust"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E15 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Fatalf("E15 failed to recover within the O(log n) budget:\n%s", out)
	}
}

func TestRunE16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	if err := RunE16(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"correct-subgraph", "jammer", "mute", "hubs", "stable-frac"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E16 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunE21Smoke(t *testing.T) {
	var sb strings.Builder
	if err := RunE21(smokeConfig(&sb)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"work-frac", "tail-frac", "speedup", "gnp-avg8", "4096"} {
		if !strings.Contains(out, want) {
			t.Fatalf("E21 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short")
	}
	var sb strings.Builder
	cfg := smokeConfig(&sb)
	if err := RunAll(cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range IDs() {
		if !strings.Contains(out, "=== "+id+" ") {
			t.Fatalf("RunAll output missing header for %s", id)
		}
	}
}
