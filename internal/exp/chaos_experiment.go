package exp

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stab"
)

// chaosCombos builds the E17 fault-family axis: the same three regimes
// the chaos test matrix uses (noisy listening, adversarial beepers, and
// live topology churn carrying an adversary through the renumbering).
func chaosCombos(cfg Config, rounds int) []stab.ChaosScenario {
	proto := func() beep.Protocol {
		return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	}
	noise := stab.ChaosScenario{
		Name:     "noise",
		Graph:    graph.GNPAvgDegree(32, 4, rng.New(cellSeed(cfg.Seed, 17, 1))),
		Protocol: proto(),
		Seed:     cellSeed(cfg.Seed, 17, 2),
		Noise:    beep.Noise{PLoss: 0.05, PFalse: 0.02},
		Sleep:    beep.Sleep{P: 0.02},
		Rounds:   rounds,
	}
	adv := stab.ChaosScenario{
		Name:        "adversaries",
		Graph:       graph.GNPAvgDegree(32, 4, rng.New(cellSeed(cfg.Seed, 17, 3))),
		Protocol:    proto(),
		Seed:        cellSeed(cfg.Seed, 17, 4),
		AdvPolicy:   beep.AdvBabbler,
		AdvVertices: []int{1, 5, 9},
		Rounds:      rounds,
	}
	churn := stab.ChaosScenario{
		Name:        "churn",
		Graph:       graph.Cycle(20),
		Protocol:    proto(),
		Seed:        cellSeed(cfg.Seed, 17, 5),
		AdvPolicy:   beep.AdvBabbler,
		AdvVertices: []int{2},
		Rounds:      rounds,
		Churn: []stab.ChaosChurn{
			{AfterRound: rounds / 4, Event: graph.ChurnEvent{Label: "grow", Edits: []graph.Edit{
				{Kind: graph.EditDelEdge, U: 0, V: 1},
				{Kind: graph.EditAddVertex},
				{Kind: graph.EditAddEdge, U: 20, V: 0},
				{Kind: graph.EditAddEdge, U: 20, V: 1},
			}}},
			{AfterRound: rounds / 2, Event: graph.ChurnEvent{Label: "crash", Edits: []graph.Edit{
				{Kind: graph.EditDelVertex, U: 5},
			}}},
		},
	}
	return []stab.ChaosScenario{noise, adv, churn}
}

// RunE17 validates the crash-safety machinery itself: every scenario ×
// engine combination is killed at randomized rounds and resumed from
// its last integrity-checked auto-checkpoint, and every resumed round
// must reproduce the uninterrupted execution's trace hash bit-exactly.
// Unlike E1–E16 this measures no property of the paper's algorithm —
// it certifies that the measurements of a killed-and-resumed campaign
// are byte-identical to an uninterrupted one's, which is what makes the
// -resume workflow of the drivers trustworthy.
func RunE17(cfg Config) error {
	kills := cfg.trials(8, 25)
	rounds := 60

	tab := &Table{
		Title:   fmt.Sprintf("E17: chaos kill–resume certification (%d kills per combo, %d-round executions)", kills, rounds),
		Columns: []string{"scenario", "engine", "kills", "bit-exact", "kill-rounds", "round0-resumes"},
		Notes: []string{
			"each kill: run to a random round, auto-checkpoint every K∈[1,8] rounds, serialize/deserialize the last checkpoint, resume in a fresh network, compare per-round trace hashes",
			"bit-exact must equal kills: a single divergence means some state (RNG phase, adversary table, churn mapping) is missing from the checkpoint",
			"round0-resumes: kills that fell before the first checkpoint cadence and resumed from the round-0 snapshot",
		},
	}

	engines := []beep.Engine{beep.Sequential, beep.Parallel, beep.PerVertex, beep.Flat, beep.FlatParallel}
	combo := 0
	for _, base := range chaosCombos(cfg, rounds) {
		for _, e := range engines {
			combo++
			s := base
			s.Engine = e
			rep, err := stab.RunChaos(s, kills, rng.New(cellSeed(cfg.Seed, 17, 6, uint64(combo))))
			if err != nil {
				return fmt.Errorf("E17 %s/%v: %w", base.Name, e, err)
			}
			tab.AddRow(base.Name, e.String(), I(rep.Kills), I(rep.Resumes),
				fmt.Sprintf("[%d,%d]", rep.MinKillRound, rep.MaxKillRound), I(rep.ZeroCheckpointResumes))
			if rep.Resumes != rep.Kills {
				tab.Notes = append(tab.Notes, fmt.Sprintf(
					"WARNING: %s/%v resumed bit-exact only %d of %d kills", base.Name, e, rep.Resumes, rep.Kills))
			}
		}
	}
	return cfg.Render(tab)
}
