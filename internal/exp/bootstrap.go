package exp

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// CI is a two-sided confidence interval for a mean.
type CI struct {
	Low  float64
	High float64
}

// String renders the interval for table cells.
func (c CI) String() string {
	return fmt.Sprintf("[%s, %s]", F(c.Low), F(c.High))
}

// BootstrapMeanCI estimates a confidence interval for the mean of xs by
// the percentile bootstrap with the given number of resamples,
// deterministic under src. conf is the coverage (e.g. 0.95). For fewer
// than two samples it returns the degenerate interval at the mean.
func BootstrapMeanCI(xs []float64, conf float64, resamples int, src *rng.Source) CI {
	if len(xs) == 0 {
		return CI{}
	}
	if len(xs) == 1 {
		return CI{Low: xs[0], High: xs[0]}
	}
	if resamples < 1 {
		resamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	means := make([]float64, resamples)
	n := len(xs)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[src.Intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return CI{
		Low:  quantile(means, alpha),
		High: quantile(means, 1-alpha),
	}
}
