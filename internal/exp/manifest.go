package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Manifest is the crash-safe completion log of a sweep: one JSON line
// per finished measurement cell, fsynced as it is recorded. A killed
// sweep re-run with the same manifest skips every cell already on disk
// and recomputes only the missing ones — with identical results, since
// cell seeds are derived, not drawn from shared state.
//
// The file format is append-only JSON lines. On open, a torn tail (a
// partial line from a crash mid-write) is detected and truncated away,
// so the manifest a crashed process left behind is always loadable.
type Manifest struct {
	mu   sync.Mutex
	f    *os.File
	done map[string][]float64
}

// CellKey identifies one sweep cell across process restarts. Every
// field participates: changing the experiment, family, size, trial
// count or root seed invalidates the cached measurement.
type CellKey struct {
	Exp    uint64 `json:"exp"`
	Family string `json:"family"`
	N      int    `json:"n"`
	Trials int    `json:"trials"`
	Seed   uint64 `json:"seed"`
}

// manifestLine is the on-disk record.
type manifestLine struct {
	CellKey
	Rounds []float64 `json:"rounds"`
}

// id renders the key's canonical map form.
func (k CellKey) id() string {
	return fmt.Sprintf("%d|%s|%d|%d|%d", k.Exp, k.Family, k.N, k.Trials, k.Seed)
}

// OpenManifest opens (creating if needed) a manifest file, loads every
// complete record, and truncates a torn tail so subsequent appends
// produce a well-formed file.
func OpenManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("exp: open manifest: %w", err)
	}
	m := &Manifest{f: f, done: make(map[string][]float64)}

	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: read manifest: %w", err)
	}
	valid := int64(0) // byte offset after the last complete, parseable line
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	off := int64(0)
	for sc.Scan() {
		line := sc.Bytes()
		lineEnd := off + int64(len(line)) + 1 // +1 for the newline
		if lineEnd > int64(len(data)) {
			break // final line has no newline: torn
		}
		var rec manifestLine
		if len(bytes.TrimSpace(line)) == 0 {
			valid = lineEnd
			off = lineEnd
			continue
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			break // corrupt record: drop it and everything after
		}
		m.done[rec.id()] = rec.Rounds
		valid = lineEnd
		off = lineEnd
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("exp: truncate torn manifest tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("exp: seek manifest: %w", err)
	}
	return m, nil
}

// Lookup returns the recorded measurements of a completed cell.
func (m *Manifest) Lookup(key CellKey) ([]float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.done[key.id()]
	return r, ok
}

// Len reports the number of completed cells on record.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.done)
}

// Record appends one completed cell and fsyncs, so the record survives
// a crash the instant Record returns.
func (m *Manifest) Record(key CellKey, rounds []float64) error {
	line, err := json.Marshal(manifestLine{CellKey: key, Rounds: rounds})
	if err != nil {
		return fmt.Errorf("exp: encode manifest record: %w", err)
	}
	line = append(line, '\n')
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(line); err != nil {
		return fmt.Errorf("exp: append manifest record: %w", err)
	}
	if err := m.f.Sync(); err != nil {
		return fmt.Errorf("exp: sync manifest: %w", err)
	}
	m.done[key.id()] = rounds
	return nil
}

// Close releases the manifest file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	err := m.f.Close()
	m.f = nil
	return err
}
