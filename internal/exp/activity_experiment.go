package exp

import (
	"fmt"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunE21 measures the activity decay that the sparse round path
// (DESIGN §11) converts into wall-clock: once most vertices reach
// their stable behavior, the round-to-round frontier — vertices whose
// state or signal can still change — collapses to the neighborhoods of
// the few still-contending vertices, while the dense path keeps paying
// O(n) every round. The experiment traces per-round active counts
// through beep.WithStatsObserver on the forced-sparse flat engine and
// times the identical whole run (same seed, bit-identical trace) on
// the dense and auto-sparse paths.
//
//   - work-frac: Σ active / (n · rounds) — the fraction of dense work
//     the sparse path actually performs over the whole run.
//   - tail-frac: the same ratio over the second half of the run, where
//     decay has set in; this bounds the long-run speedup.
//   - speedup: dense wall-clock / sparse wall-clock for the whole run
//     (min over trials on both sides).
func RunE21(cfg Config) error {
	trials := cfg.trials(2, 3)
	sizes := []int{4096, 65536}
	if cfg.Full {
		sizes = append(sizes, 1_000_000)
	}

	tab := &Table{
		Title:   "E21: activity decay and the sparse-round payoff (flat engine, randomized start)",
		Columns: []string{"family", "n", "rounds", "work-frac", "tail-frac", "dense-ms", "sparse-ms", "speedup"},
		Notes: []string{
			"work-frac: fraction of dense per-vertex work the sparse path performs over the whole run (Σ active / n·rounds)",
			"tail-frac: same ratio over the run's second half, once activity has decayed",
			"dense/sparse runs share the seed and are bit-identical (TestSparseEquivalence*); only wall-clock differs",
			"timing is the min over trials of whole fixed-length runs (the stabilization round count of trial's own trace)",
		},
	}

	fams := []familyGen{
		{name: "cycle", build: func(n int, _ *rng.Source) *graph.Graph { return graph.Cycle(n) }},
		{name: "torus", build: func(n int, _ *rng.Source) *graph.Graph { return torusOf(n) }},
		{name: "gnp-avg8", build: func(n int, src *rng.Source) *graph.Graph { return graph.GNPAvgDegree(n, 8, src) }},
	}

	for _, fam := range fams {
		for _, n := range sizes {
			var rounds, workFrac, tailFrac []float64
			bestDense, bestSparse := 0.0, 0.0
			for trial := 0; trial < trials; trial++ {
				g := fam.build(n, rng.New(cellSeed(cfg.Seed, 21, uint64(n), uint64(trial), 1)))
				seed := cellSeed(cfg.Seed, 21, uint64(n), uint64(trial), 2)

				// Pass 1: forced-sparse run to stabilization, tracing the
				// per-round active counts.
				var active []int
				r, err := runToStabilization(g, seed, beep.WithSparse(beep.SparseOn),
					beep.WithStatsObserver(func(_, act, _ int) { active = append(active, act) }))
				if err != nil {
					return fmt.Errorf("E21 %s n=%d: %w", fam.name, n, err)
				}
				sum, tailSum := 0, 0
				for i, a := range active[:r] {
					sum += a
					if i >= r/2 {
						tailSum += a
					}
				}
				rounds = append(rounds, float64(r))
				workFrac = append(workFrac, float64(sum)/float64(n*r))
				tailFrac = append(tailFrac, float64(tailSum)/float64(n*(r-r/2)))

				// Pass 2: time the same fixed-length run on both paths.
				// The probe is out of the loop, so the timing is pure
				// round cost.
				denseMS, err := timeFixedRun(g, seed, r, beep.SparseOff)
				if err != nil {
					return fmt.Errorf("E21 %s n=%d dense: %w", fam.name, n, err)
				}
				sparseMS, err := timeFixedRun(g, seed, r, beep.SparseAuto)
				if err != nil {
					return fmt.Errorf("E21 %s n=%d sparse: %w", fam.name, n, err)
				}
				if trial == 0 || denseMS < bestDense {
					bestDense = denseMS
				}
				if trial == 0 || sparseMS < bestSparse {
					bestSparse = sparseMS
				}
			}
			tab.AddRow(fam.name, I(n), F(Summarize(rounds).Mean),
				F(Summarize(workFrac).Mean), F(Summarize(tailFrac).Mean),
				F(bestDense), F(bestSparse), F(bestDense/bestSparse))
		}
	}
	return cfg.Render(tab)
}

// runToStabilization runs a flat-engine network from a randomized
// start until the legality probe stabilizes and returns the round
// count.
func runToStabilization(g *graph.Graph, seed uint64, opts ...beep.Option) (int, error) {
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, seed, append([]beep.Option{beep.WithEngine(beep.Flat)}, opts...)...)
	if err != nil {
		return 0, err
	}
	defer net.Close()
	net.RandomizeAll()
	var probe core.State
	r, ok := net.Run(1_000_000, func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	})
	if !ok {
		return 0, fmt.Errorf("no stabilization within 10^6 rounds")
	}
	return r, nil
}

// timeFixedRun times `rounds` flat-engine rounds from a randomized
// start under the given sparse mode and returns milliseconds.
func timeFixedRun(g *graph.Graph, seed uint64, rounds int, mode beep.SparseMode) (float64, error) {
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, seed, beep.WithEngine(beep.Flat), beep.WithSparse(mode))
	if err != nil {
		return 0, err
	}
	defer net.Close()
	net.RandomizeAll()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := net.TryStep(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / 1e6, nil
}
