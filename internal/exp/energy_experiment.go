package exp

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunE13 measures beep complexity — the energy metric of the wireless
// literature the beeping model comes from. Two quantities matter:
//
//   - convergence energy: beeps per vertex until stabilization;
//   - steady-state energy: beeps per round once stabilized. This is
//     where self-stabilization has a structural price the paper makes
//     explicit ("stable vertices cannot be silent after they
//     stabilized", Section 2): MIS members must keep beeping forever
//     so faults are detectable, whereas the non-self-stabilizing
//     Jeavons baseline goes permanently silent — and permanently blind.
func RunE13(cfg Config) error {
	trials := cfg.trials(3, 10)
	n := 256
	if cfg.Full {
		n = 1024
	}

	tab := &Table{
		Title:   fmt.Sprintf("E13: beep (energy) complexity on gnp-avg8 n=%d, fresh start, mean over trials", n),
		Columns: []string{"algorithm", "rounds", "conv-beeps/vertex", "max-vertex-beeps", "steady-beeps/round", "fault-detect"},
		Notes: []string{
			"conv-beeps/vertex: mean transmissions per vertex until stabilization (convergence energy)",
			"steady-beeps/round: transmissions per round in the stabilized configuration (standby energy)",
			"fault-detect: whether the steady state lets neighbors notice a member's disappearance",
			"the nonzero standby energy of the self-stabilizing algorithms is the structural price of fault detection (Section 2)",
		},
	}

	type alg struct {
		name  string
		proto beep.Protocol
		// selfStab marks protocols whose steady state supports fault
		// detection.
		selfStab bool
	}
	algs := func() []alg {
		return []alg{
			{name: "alg1-known-delta", proto: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)), selfStab: true},
			{name: "alg2-two-channel", proto: core.NewAlg2(core.NeighborhoodMaxDegree(core.DefaultC1TwoHop)), selfStab: true},
			{name: "jeavons (not SS)", proto: baseline.Jeavons{}, selfStab: false},
		}
	}

	for _, a := range algs() {
		var rounds, meanBeeps, maxBeeps, steady []float64
		for trial := 0; trial < trials; trial++ {
			g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 13, uint64(trial), 1)))
			counts := make([]int, n)
			lastRoundBeeps := 0
			net, err := beep.NewNetwork(g, a.proto, cellSeed(cfg.Seed, 13, uint64(trial), 2),
				beep.WithObserver(func(_ int, sent, _ []beep.Signal) {
					lastRoundBeeps = 0
					for v, s := range sent {
						if s != beep.Silent {
							counts[v]++
							lastRoundBeeps++
						}
					}
				}))
			if err != nil {
				return fmt.Errorf("E13 %s: %w", a.name, err)
			}
			var stop func() bool
			if a.selfStab {
				var probe core.State
				stop = func() bool {
					return probe.Refresh(net) == nil && probe.Stabilized()
				}
			} else {
				stop = func() bool {
					for v := 0; v < n; v++ {
						d, ok := net.Machine(v).(baseline.Decider)
						if !ok || d.Status() == baseline.Active {
							return false
						}
					}
					return true
				}
			}
			r, ok := net.Run(200000, stop)
			if !ok {
				net.Close()
				return fmt.Errorf("E13 %s: no convergence", a.name)
			}
			rounds = append(rounds, float64(r))
			sum, max := 0, 0
			for _, c := range counts {
				sum += c
				if c > max {
					max = c
				}
			}
			meanBeeps = append(meanBeeps, float64(sum)/float64(n))
			maxBeeps = append(maxBeeps, float64(max))
			// Steady-state energy: run a settling round and average the
			// per-round beeps over a short window.
			const window = 50
			total := 0
			for w := 0; w < window; w++ {
				net.Step()
				total += lastRoundBeeps
			}
			steady = append(steady, float64(total)/window)
			net.Close()
		}
		detect := "no (blind)"
		if a.selfStab {
			detect = "yes"
		}
		tab.AddRow(a.name, F(Summarize(rounds).Mean), F(Summarize(meanBeeps).Mean),
			F(Summarize(maxBeeps).Mean), F(Summarize(steady).Mean), detect)
	}
	return cfg.Render(tab)
}
