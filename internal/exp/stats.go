// Package exp is the experiment framework that regenerates every
// quantitative claim of the paper as a table or series: summary
// statistics over trials, scaling-law fits against the theorems'
// O(log n) and O(log n · log log n) bounds, text rendering, and the
// experiment registry (F1, E1–E8) described in DESIGN.md.
package exp

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the descriptive statistics of one measurement cell.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary; it returns a zero Summary for no data.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	sum, sumSq := 0.0, 0.0
	for _, x := range s {
		sum += x
		sumSq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(s),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    s[0],
		Median: quantile(s, 0.5),
		P90:    quantile(s, 0.9),
		Max:    s[len(s)-1],
	}
}

// quantile returns the q-quantile of sorted data via linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Log2 returns log2(x) guarded for the small sizes that appear in quick
// sweeps (log2 of anything below 2 is clamped to 1 so normalized columns
// stay finite).
func Log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// LogLog2 returns log2(log2(x)) with the same clamping.
func LogLog2(x float64) float64 {
	return Log2(Log2(x))
}

// LinearFit is an ordinary least-squares fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination in [0, 1] (1 when y has no
	// variance, i.e. a constant perfectly explained by the intercept).
	R2 float64
}

// FitLinear fits y against x. It returns an error when fewer than two
// points are supplied or x has no variance.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("exp: fit length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, fmt.Errorf("exp: fit needs at least two points, got %d", len(x))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, fmt.Errorf("exp: fit with zero x-variance")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// ScalingVerdict compares how well rounds scale with log n versus with
// log n · log log n, the two regimes of Theorems 2.1/2.3 and 2.2.
type ScalingVerdict struct {
	// RatioLogSpread is max/min of rounds/log2(n) across sizes: close to
	// 1 means clean O(log n) scaling.
	RatioLogSpread float64
	// RatioLogLogSpread is max/min of rounds/(log2 n · log2 log2 n).
	RatioLogLogSpread float64
	FitLog            LinearFit
}

// JudgeScaling computes the verdict from parallel slices of sizes and
// mean rounds.
func JudgeScaling(sizes []int, rounds []float64) (ScalingVerdict, error) {
	if len(sizes) != len(rounds) || len(sizes) < 2 {
		return ScalingVerdict{}, fmt.Errorf("exp: scaling needs matched series of >= 2 points")
	}
	logx := make([]float64, len(sizes))
	minR, maxR := math.Inf(1), math.Inf(-1)
	minRR, maxRR := math.Inf(1), math.Inf(-1)
	for i, n := range sizes {
		l := Log2(float64(n))
		ll := l * LogLog2(float64(n))
		logx[i] = l
		r := rounds[i] / l
		rr := rounds[i] / ll
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		if rr < minRR {
			minRR = rr
		}
		if rr > maxRR {
			maxRR = rr
		}
	}
	fit, err := FitLinear(logx, rounds)
	if err != nil {
		return ScalingVerdict{}, err
	}
	v := ScalingVerdict{FitLog: fit}
	if minR > 0 {
		v.RatioLogSpread = maxR / minR
	}
	if minRR > 0 {
		v.RatioLogLogSpread = maxRR / minRR
	}
	return v, nil
}
