package exp

import (
	"runtime"
	"sync"
)

// runTrials executes fn(trial) for every trial in [0, trials)
// concurrently, bounded by the number of CPUs, and returns the first
// error encountered. Trials must be independent (each derives its own
// seeds), so results remain deterministic regardless of scheduling;
// fn must write its outputs to trial-indexed slots, never append.
func runTrials(trials int, fn func(trial int) error) error {
	if trials <= 1 {
		if trials == 1 {
			return fn(0)
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range next {
				if err := fn(trial); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	return firstErr
}
