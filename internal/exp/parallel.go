package exp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runTrials executes fn(trial) for every trial in [0, trials)
// concurrently, bounded by the number of CPUs, and returns the first
// error encountered. Trials must be independent (each derives its own
// seeds), so results remain deterministic regardless of scheduling;
// fn must write its outputs to trial-indexed slots, never append.
//
// After the first error the dispatcher stops handing out new trials:
// trials already in flight finish (their writes stay trial-indexed and
// harmless), but no further fn calls start, so a broken cell fails in
// O(workers) trials instead of grinding through the whole pool
// (TestRunTrialsStopsDispatchAfterError).
func runTrials(trials int, fn func(trial int) error) error {
	if trials <= 1 {
		if trials == 1 {
			return fn(0)
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := range next {
				if err := fn(trial); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	for t := 0; t < trials && !failed.Load(); t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	return firstErr
}
