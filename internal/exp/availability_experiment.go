package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stab"
)

// RunE14 measures availability under recurring fault storms — the
// dependability view of self-stabilization. Unlike E6 (which waits for
// each recovery), faults arrive on a fixed period whether or not the
// previous one has been repaired, and the metric is the fraction of
// rounds the system spends in a legal configuration. Because recovery
// takes O(log n) rounds, availability should approach 1 once the fault
// period comfortably exceeds the recovery time, and collapse when
// faults arrive faster than repairs.
func RunE14(cfg Config) error {
	trials := cfg.trials(3, 10)
	n := 256
	if cfg.Full {
		n = 1024
	}
	window := 2000

	tab := &Table{
		Title:   fmt.Sprintf("E14: availability under recurring faults (gnp-avg8 n=%d, window %d rounds, mean over trials)", n, window),
		Columns: []string{"fault", "k", "period", "availability", "mean-recovery", "longest-outage", "injections"},
		Notes: []string{
			"faults recur every `period` rounds regardless of recovery state",
			"availability: fraction of rounds in a legal configuration",
			"the crossover sits where the period matches the O(log n) recovery time",
		},
	}

	k := n / 20
	for _, faultKind := range []string{"random", "mis"} {
		for _, period := range []int{10, 25, 50, 100, 400} {
			var avail, rec, outage, inj []float64
			for trial := 0; trial < trials; trial++ {
				g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 14, uint64(period), uint64(trial), 1)))
				var fault stab.Fault
				if faultKind == "random" {
					fault = stab.RandomFault{K: k}
				} else {
					fault = stab.MISFault{K: k / 4}
				}
				res, err := stab.MeasureAvailability(stab.AvailabilityConfig{
					Graph:    g,
					Protocol: core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
					Seed:     cellSeed(cfg.Seed, 14, uint64(period), uint64(trial), 2),
					Fault:    fault,
					Period:   period,
					Window:   window,
				})
				if err != nil {
					return fmt.Errorf("E14 %s period=%d: %w", faultKind, period, err)
				}
				avail = append(avail, res.Availability)
				rec = append(rec, res.MeanRecovery)
				outage = append(outage, float64(res.LongestOutage))
				inj = append(inj, float64(res.Injections))
			}
			kShown := k
			if faultKind == "mis" {
				kShown = k / 4
			}
			tab.AddRow(faultKind, I(kShown), I(period),
				fmt.Sprintf("%.3f", Summarize(avail).Mean),
				F(Summarize(rec).Mean), F(Summarize(outage).Mean), F(Summarize(inj).Mean))
		}
	}
	return cfg.Render(tab)
}
