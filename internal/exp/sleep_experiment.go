package exp

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// RunE12 probes the second model harshening: duty-cycling (sleeping)
// vertices. Each round every vertex independently misses the round
// (no transmit, no listen, no update) with probability p — radios in
// sleep slots or briefly crashed processors. Like E9 it reports both
// the strict per-round legality and the functional MIS persistence.
func RunE12(cfg Config) error {
	trials := cfg.trials(3, 10)
	n := 256
	if cfg.Full {
		n = 1024
	}
	const window = 1000
	budget := 100000

	tab := &Table{
		Title:   fmt.Sprintf("E12: duty-cycling — per-round sleep probability p, Algorithm 1 known Δ, gnp-avg8 n=%d", n),
		Columns: []string{"p", "func-stab", "rounds(func)", "strict-frac", "func-frac", "member-flips"},
		Notes: []string{
			"a sleeping vertex misses the whole round: no beep, no listening, no state update",
			"func: the prominent set is a valid MIS; strict: the paper's S_t = V condition",
			"unlike noise (E9), sleep only delays information — committed members keep their state while asleep",
		},
	}

	for _, p := range []float64{0, 0.01, 0.05, 0.1, 0.3, 0.5} {
		funcStab := 0
		var rounds, strictFrac, funcFrac, flips []float64
		for trial := 0; trial < trials; trial++ {
			g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 12, uint64(p*1e6), uint64(trial), 1)))
			proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
			net, err := beep.NewNetwork(g, proto, cellSeed(cfg.Seed, 12, uint64(p*1e6), uint64(trial), 2),
				beep.WithSleep(beep.Sleep{P: p}))
			if err != nil {
				return fmt.Errorf("E12 p=%v: %w", p, err)
			}
			net.RandomizeAll()

			var probe core.State
			functionalMIS := func() ([]bool, bool) {
				if probe.Refresh(net) != nil {
					return nil, false
				}
				mask := make([]bool, n)
				for v := 0; v < n; v++ {
					mask[v] = probe.Prominent(v)
				}
				return mask, g.VerifyMIS(mask) == nil
			}
			strictNow := func() bool {
				return probe.Refresh(net) == nil && probe.Stabilized()
			}
			stop := func() bool {
				_, ok := functionalMIS()
				return ok
			}
			r, ok := net.Run(budget, stop)
			if !ok {
				net.Close()
				continue
			}
			funcStab++
			rounds = append(rounds, float64(r))

			ref, _ := functionalMIS()
			flipped := make([]bool, n)
			strictRounds, funcRounds := 0, 0
			for w := 0; w < window; w++ {
				net.Step()
				if strictNow() {
					strictRounds++
				}
				mask, ok := functionalMIS()
				if ok {
					funcRounds++
				}
				for v := range mask {
					if mask[v] != ref[v] {
						flipped[v] = true
					}
				}
			}
			net.Close()
			strictFrac = append(strictFrac, float64(strictRounds)/window)
			funcFrac = append(funcFrac, float64(funcRounds)/window)
			flips = append(flips, float64(graph.CountTrue(flipped)))
		}
		tab.AddRow(fmt.Sprintf("%.3g", p),
			fmt.Sprintf("%d/%d", funcStab, trials),
			F(Summarize(rounds).Mean),
			fmt.Sprintf("%.3f", Summarize(strictFrac).Mean),
			fmt.Sprintf("%.3f", Summarize(funcFrac).Mean),
			F(Summarize(flips).Mean))
	}
	return cfg.Render(tab)
}
