package exp

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/trace"
)

// RunE11 renders the convergence dynamics behind the headline numbers:
// per-round |S_t| (stabilized vertices), |PM_t| (prominent vertices)
// and the beeping load, for each initial configuration on one instance
// — the full-version figure a brief announcement has no space for. It
// also prints the topology metadata of the sweep families so the other
// tables can be read in context.
func RunE11(cfg Config) error {
	n := 256
	if cfg.Full {
		n = 1024
	}

	// Topology metadata for the standard sweep at this size.
	meta := &Table{
		Title:   fmt.Sprintf("E11a: sweep-family topology metadata at n≈%d", n),
		Columns: []string{"family", "n", "m", "Δ", "avg-deg", "diam≈", "triangles", "connected"},
		Notes:   []string{"diam≈ is the double-sweep BFS lower bound (exact for trees/cycles in practice)"},
	}
	for _, fam := range standardFamilies() {
		g := fam.build(n, rng.New(cellSeed(cfg.Seed, 11, 1)))
		meta.AddRow(fam.name, I(g.N()), I(g.M()), I(g.MaxDegree()),
			F(g.AverageDegree()), I(g.DiameterApprox()), I(g.TriangleCount()),
			fmt.Sprintf("%v", g.IsConnected()))
	}
	if err := cfg.Render(meta); err != nil {
		return err
	}

	// Convergence curves per init mode on one gnp instance.
	series := &Series{
		Title:  fmt.Sprintf("E11b: convergence dynamics, Algorithm 1 known Δ, gnp-avg8 n=%d (sampled rounds)", n),
		XLabel: "round",
		YLabel: "count",
	}
	sampleAt := []int{0, 1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	for _, init := range []core.InitMode{core.InitFresh, core.InitRandom, core.InitAdversarial, core.InitZero} {
		g := graph.GNPAvgDegree(n, 8, rng.New(cellSeed(cfg.Seed, 11, 2)))
		proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
		var rec *trace.Recorder
		net, err := beep.NewNetwork(g, proto, cellSeed(cfg.Seed, 11, uint64(init), 3),
			beep.WithObserver(func(round int, sent, heard []beep.Signal) {
				rec.Observer()(round, sent, heard)
			}))
		if err != nil {
			return err
		}
		rec = trace.NewRecorder(net)
		if err := applyInitExp(net, init); err != nil {
			net.Close()
			return err
		}
		var probe core.State
		stop := func() bool {
			return probe.Refresh(net) == nil && probe.Stabilized()
		}
		if _, ok := net.Run(100000, stop); !ok {
			net.Close()
			return fmt.Errorf("E11 init=%v: no stabilization", init)
		}
		stats := rec.Stats()
		net.Close()
		for _, r := range sampleAt {
			if r >= len(stats) {
				break
			}
			series.Add("stable/"+init.String(), float64(r), float64(stats[r].Stable))
		}
		// Always include the terminal point.
		last := stats[len(stats)-1]
		series.Add("stable/"+init.String(), float64(last.Round), float64(last.Stable))
		series.Add("beeping/"+init.String(), float64(len(stats)), float64(last.Beeping))
	}
	return cfg.Render(series)
}

// applyInitExp mirrors the core initial-configuration handling for
// directly built networks in the experiment suite.
func applyInitExp(net *beep.Network, mode core.InitMode) error {
	switch mode {
	case core.InitFresh:
		return nil
	case core.InitRandom:
		net.RandomizeAll()
		return nil
	case core.InitAdversarial, core.InitZero:
		for v := 0; v < net.N(); v++ {
			m, ok := net.Machine(v).(core.Leveled)
			if !ok {
				return fmt.Errorf("exp: machine %T has no levels", net.Machine(v))
			}
			if mode == core.InitAdversarial {
				m.SetLevel(-m.Cap())
			} else {
				m.SetLevel(0)
			}
		}
		return nil
	default:
		return fmt.Errorf("exp: unknown init mode %v", mode)
	}
}
