package exp

import (
	"testing"

	"repro/internal/rng"
)

func TestBootstrapMeanCIBasics(t *testing.T) {
	src := rng.New(1)
	xs := []float64{10, 11, 9, 10.5, 9.5, 10, 10.2, 9.8}
	ci := BootstrapMeanCI(xs, 0.95, 2000, src)
	mean := Summarize(xs).Mean
	if ci.Low > mean || ci.High < mean {
		t.Fatalf("mean %v outside CI %v", mean, ci)
	}
	if ci.Low >= ci.High {
		t.Fatalf("degenerate CI %v for varied data", ci)
	}
	// Interval should be narrow for tight data.
	if ci.High-ci.Low > 2 {
		t.Fatalf("CI too wide: %v", ci)
	}
}

func TestBootstrapMeanCICoversTrueMean(t *testing.T) {
	// Repeated experiments: the 95% CI should cover the true mean in
	// most repetitions (loose bound to keep the test stable).
	src := rng.New(7)
	const trueMean = 5.0
	covered, reps := 0, 100
	for r := 0; r < reps; r++ {
		xs := make([]float64, 30)
		for i := range xs {
			// Uniform on [0, 10]: mean 5.
			xs[i] = src.Float64() * 10
		}
		ci := BootstrapMeanCI(xs, 0.95, 500, src)
		if ci.Low <= trueMean && trueMean <= ci.High {
			covered++
		}
	}
	if covered < 80 {
		t.Fatalf("95%% CI covered the true mean only %d/%d times", covered, reps)
	}
}

func TestBootstrapMeanCIEdgeCases(t *testing.T) {
	src := rng.New(2)
	if ci := BootstrapMeanCI(nil, 0.95, 100, src); ci != (CI{}) {
		t.Fatalf("empty data CI %v", ci)
	}
	ci := BootstrapMeanCI([]float64{42}, 0.95, 100, src)
	if ci.Low != 42 || ci.High != 42 {
		t.Fatalf("singleton CI %v", ci)
	}
	// Invalid parameters fall back to defaults rather than failing.
	ci = BootstrapMeanCI([]float64{1, 2, 3}, -1, 0, src)
	if ci.Low > ci.High {
		t.Fatalf("fallback CI %v", ci)
	}
	if ci.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a := BootstrapMeanCI(xs, 0.9, 300, rng.New(11))
	b := BootstrapMeanCI(xs, 0.9, 300, rng.New(11))
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}
