package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("alpha", F(3.14159))
	tab.AddRow("a-much-longer-name", I(42))
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "name", "value", "alpha", "3.14", "a-much-longer-name", "42", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFFormatting(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		3.14159: "3.14",
		123.456: "123.5",
		0:       "0",
	}
	for in, want := range cases {
		if got := F(in); got != want {
			t.Errorf("F(%v)=%q want %q", in, got, want)
		}
	}
	if I(-7) != "-7" {
		t.Fatal("I wrong")
	}
}

func TestSeriesRenderPreservesOrder(t *testing.T) {
	s := &Series{Title: "fig", XLabel: "n", YLabel: "rounds"}
	s.Add("zz", 1, 2)
	s.Add("aa", 3, 4)
	s.Add("zz", 5, 6)
	var sb strings.Builder
	if err := s.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "zz:") || !strings.Contains(out, "aa:") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if strings.Index(out, "zz:") > strings.Index(out, "aa:") {
		t.Fatal("insertion order not preserved")
	}
	if !strings.Contains(out, "(1, 2)  (5, 6)") {
		t.Fatalf("points not appended in order:\n%s", out)
	}
}

func TestLookupAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 22 {
		t.Fatalf("registered %d experiments, want 22 (F1, E1–E19, E21, E22)", len(ids))
	}
	for _, id := range ids {
		e, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if got := c.trials(5, 20); got != 5 {
		t.Fatalf("quick trials %d", got)
	}
	c.Full = true
	if got := c.trials(5, 20); got != 20 {
		t.Fatalf("full trials %d", got)
	}
	c.Trials = 3
	if got := c.trials(5, 20); got != 3 {
		t.Fatalf("override trials %d", got)
	}
	if len((Config{}).sizes()) == 0 || len((Config{Full: true}).sizes()) == 0 {
		t.Fatal("sizes empty")
	}
	if (Config{Full: true}).sizes()[4] != 65536 {
		t.Fatal("full sizes wrong")
	}
}

func TestTorusOfApproximatesN(t *testing.T) {
	for _, n := range []int{64, 100, 1000} {
		g := torusOf(n)
		if g.N() < n || g.N() > 2*n {
			t.Fatalf("torusOf(%d) has %d vertices", n, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTableRenderJSON(t *testing.T) {
	tab := &Table{Title: "demo", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	var sb strings.Builder
	if err := tab.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Kind    string     `json:"kind"`
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "table" || doc.Title != "demo" || len(doc.Rows) != 1 || doc.Rows[0][1] != "2" {
		t.Fatalf("json doc %+v", doc)
	}
}

func TestSeriesRenderJSON(t *testing.T) {
	s := &Series{Title: "fig", XLabel: "x", YLabel: "y"}
	s.Add("l", 1, 2)
	var sb strings.Builder
	if err := s.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Kind  string             `json:"kind"`
		Lines map[string][]Point `json:"lines"`
		Order []string           `json:"order"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Kind != "series" || len(doc.Lines["l"]) != 1 || doc.Lines["l"][0].Y != 2 {
		t.Fatalf("json doc %+v", doc)
	}
	if len(doc.Order) != 1 || doc.Order[0] != "l" {
		t.Fatalf("order %v", doc.Order)
	}
}

func TestConfigRenderDispatch(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"column"}}
	tab.AddRow("v")
	var text, js strings.Builder
	if err := (Config{Out: &text}).Render(tab); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Out: &js, JSON: true}).Render(tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "---") {
		t.Fatal("text mode missing rule")
	}
	if !strings.HasPrefix(js.String(), "{") {
		t.Fatal("json mode not json")
	}
}
