package exp

import (
	"fmt"
	"sort"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stab"
)

// churnStorm names one schedule generator for the E15 sweep.
type churnStorm struct {
	name string
	gen  func(g *graph.Graph, src *rng.Source) ([]graph.ChurnEvent, error)
}

// churnStorms builds the event-type axis of E15, scaled to n.
func churnStorms(n int) []churnStorm {
	atLeast := func(x, lo int) int {
		if x < lo {
			return lo
		}
		return x
	}
	return []churnStorm{
		{"flap", func(g *graph.Graph, src *rng.Source) ([]graph.ChurnEvent, error) {
			return graph.FlapSchedule(g, 3, atLeast(n/8, 4), src)
		}},
		{"growth", func(g *graph.Graph, src *rng.Source) ([]graph.ChurnEvent, error) {
			return graph.GrowthSchedule(g, 3, atLeast(n/32, 2), 2, src)
		}},
		{"crash", func(g *graph.Graph, src *rng.Source) ([]graph.ChurnEvent, error) {
			return graph.CrashSchedule(g, 3, atLeast(n/16, 2), src)
		}},
		{"partition-heal", func(g *graph.Graph, src *rng.Source) ([]graph.ChurnEvent, error) {
			return graph.PartitionHealSchedule(g, 1, src)
		}},
	}
}

// RunE15 measures recovery from topology churn: the network stabilizes,
// then a storm of edit events (edge flaps, joins, crashes, a partition
// that heals) hits it through live rewiring, and the harness records the
// rounds back to a legal configuration after every event. The paper's
// "from any arbitrary configuration" guarantee (Theorem 2.1) predicts
// re-stabilization within the same O(log n) regime as a cold start —
// churn merely selects which arbitrary configuration the system restarts
// from — so every event must recover inside the O(log n)-scaled budget,
// and the superstabilization-style adjustment measure shows how local
// the repair is.
func RunE15(cfg Config) error {
	trials := cfg.trials(2, 6)
	sizes := cfg.sizes()
	n := sizes[len(sizes)/2]
	budget := 400 * (int(Log2(float64(n))) + 2) // O(log n)-scaled recovery budget

	tab := &Table{
		Title:   fmt.Sprintf("E15: re-stabilization under topology churn (n≈%d, budget %d rounds, mean over trials)", n, budget),
		Columns: []string{"family", "storm", "events", "recovered", "init-stab", "recovery(mean)", "recovery(max)", "adjust(mean)", "avail"},
		Notes: []string{
			"recovery: rounds from a live Rewire (survivors keep state, joiners arrive arbitrary) back to a verified legal configuration",
			fmt.Sprintf("budget is O(log n)-scaled (%d rounds); 'recovered' must equal 'events' for Theorem 2.1's regime to hold", budget),
			"adjust: surviving vertices NOT incident to the change whose MIS membership changed anyway (superstabilization adjustment measure)",
			"avail: fraction of post-warmup rounds in a legal configuration (includes a 50-round dwell after each recovery)",
		},
	}

	families := []familyGen{standardFamilies()[0], standardFamilies()[3], standardFamilies()[5]}
	for _, fam := range families {
		for _, storm := range churnStorms(n) {
			var initial, recovery, adjust, avail []float64
			events, recovered := 0, 0
			for trial := 0; trial < trials; trial++ {
				g := fam.build(n, rng.New(cellSeed(cfg.Seed, 15, uint64(trial), 1)))
				sched, err := storm.gen(g, rng.New(cellSeed(cfg.Seed, 15, uint64(trial), 2)))
				if err != nil {
					return fmt.Errorf("E15 %s/%s: schedule: %w", fam.name, storm.name, err)
				}
				res, err := stab.MeasureChurn(stab.ChurnConfig{
					Graph:          g,
					Protocol:       core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)),
					Seed:           cellSeed(cfg.Seed, 15, uint64(trial), 3),
					Schedule:       sched,
					RecoveryBudget: budget,
					Dwell:          50,
				})
				if err != nil {
					return fmt.Errorf("E15 %s/%s: %w", fam.name, storm.name, err)
				}
				initial = append(initial, float64(res.InitialRounds))
				avail = append(avail, res.Availability)
				events += len(res.Events)
				recovered += res.Recovered
				for _, ev := range res.Events {
					recovery = append(recovery, float64(ev.RecoveryRounds))
					if ev.Recovered {
						adjust = append(adjust, float64(ev.Adjustment))
					}
				}
			}
			rs := Summarize(recovery)
			tab.AddRow(fam.name, storm.name, I(events), I(recovered),
				F(Summarize(initial).Mean), F(rs.Mean), F(rs.Max),
				F(Summarize(adjust).Mean), fmt.Sprintf("%.3f", Summarize(avail).Mean))
			if recovered != events {
				tab.Notes = append(tab.Notes,
					fmt.Sprintf("WARNING: %s/%s recovered only %d of %d events within the budget", fam.name, storm.name, recovered, events))
			}
		}
	}
	return cfg.Render(tab)
}

// topDegree returns the k highest-degree vertices of g.
func topDegree(g *graph.Graph, k int) []int {
	order := make([]int, g.N())
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	if k > len(order) {
		k = len(order)
	}
	return order[:k]
}

// randomVerts returns k distinct uniformly chosen vertices.
func randomVerts(n, k int, src *rng.Source) []int {
	perm := src.Perm(n)
	if k > n {
		k = n
	}
	return perm[:k]
}

// RunE16 measures MIS quality on the correct induced subgraph as a
// function of adversary count, placement, and policy. Jammers deny their
// neighbors every silent round, so a correct vertex whose correct
// neighborhood cannot dominate it may never stabilize — the guarantee
// quantifies over cooperating vertices only — while mute adversaries are
// observationally absent and cost nothing. The run therefore measures
// the stable fraction of correct vertices at a fixed horizon rather than
// waiting for stabilization that may never come.
func RunE16(cfg Config) error {
	trials := cfg.trials(2, 6)
	sizes := cfg.sizes()
	n := sizes[len(sizes)/2]
	horizon := 60 * (int(Log2(float64(n))) + 2)

	tab := &Table{
		Title:   fmt.Sprintf("E16: correct-subgraph MIS quality under adversarial beepers (n=%d, horizon %d rounds)", n, horizon),
		Columns: []string{"family", "policy", "k", "placement", "stable-frac", "legal-runs", "stab-rounds(mean)"},
		Notes: []string{
			"stable-frac: fraction of correct (non-adversarial) vertices in S_t at the horizon, mean over trials",
			"legal-runs: trials whose correct subgraph reached a verified legal configuration within the horizon",
			"jammers starve neighbors of silent rounds: expect stable-frac to drop with k and with hub placement;",
			"mute adversaries are observationally absent: expect stable-frac 1 and all runs legal at the same k",
		},
	}

	families := []familyGen{standardFamilies()[3], standardFamilies()[4]} // gnp-avg8, star
	ks := []int{1, atLeastInt(n/32, 2), atLeastInt(n/8, 4)}
	policies := []beep.AdversaryPolicy{beep.AdvJammer, beep.AdvMute}
	for _, fam := range families {
		for _, policy := range policies {
			for _, k := range ks {
				for _, placement := range []string{"random", "hubs"} {
					var fracs, stabRounds []float64
					legal := 0
					for trial := 0; trial < trials; trial++ {
						g := fam.build(n, rng.New(cellSeed(cfg.Seed, 16, uint64(k), uint64(trial), 1)))
						var verts []int
						if placement == "hubs" {
							verts = topDegree(g, k)
						} else {
							verts = randomVerts(g.N(), k, rng.New(cellSeed(cfg.Seed, 16, uint64(k), uint64(trial), 2)))
						}
						frac, stab, rounds, err := adversaryQualityRun(g, policy, verts,
							cellSeed(cfg.Seed, 16, uint64(k), uint64(trial), 3), horizon)
						if err != nil {
							return fmt.Errorf("E16 %s/%s k=%d %s: %w", fam.name, policy, k, placement, err)
						}
						fracs = append(fracs, frac)
						if stab {
							legal++
							stabRounds = append(stabRounds, float64(rounds))
						}
					}
					mean := "-"
					if len(stabRounds) > 0 {
						mean = F(Summarize(stabRounds).Mean)
					}
					tab.AddRow(fam.name, policy.String(), I(k), placement,
						fmt.Sprintf("%.3f", Summarize(fracs).Mean), I(legal), mean)
				}
			}
		}
	}
	return cfg.Render(tab)
}

// adversaryQualityRun executes one instance with the given adversaries
// and returns the horizon-end stable fraction of correct vertices,
// whether (and when) the correct subgraph reached a verified legal
// configuration.
func adversaryQualityRun(g *graph.Graph, policy beep.AdversaryPolicy, verts []int, seed uint64, horizon int) (float64, bool, int, error) {
	net, err := beep.NewNetwork(g, core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta)), seed,
		beep.WithAdversaries(policy, verts))
	if err != nil {
		return 0, false, 0, err
	}
	defer net.Close()
	net.RandomizeAll()

	mask := make([]bool, net.N())
	net.FillAdversaryMask(mask)
	var probe core.State
	probe.SetExcluded(mask)

	correct := net.N() - net.AdversaryCount()
	stabilized, stabRound := false, 0
	for r := 0; r < horizon; r++ {
		net.Step()
		if err := probe.Refresh(net); err != nil {
			return 0, false, 0, err
		}
		if !stabilized && probe.Stabilized() {
			if err := probe.VerifyMIS(); err != nil {
				return 0, false, 0, fmt.Errorf("legal configuration fails masked verification: %w", err)
			}
			stabilized, stabRound = true, net.Round()
		}
	}
	stableCorrect := probe.StableCount() - net.AdversaryCount() // excluded are vacuously stable
	frac := 0.0
	if correct > 0 {
		frac = float64(stableCorrect) / float64(correct)
	}
	return frac, stabilized, stabRound, nil
}

// atLeastInt clamps x from below.
func atLeastInt(x, lo int) int {
	if x < lo {
		return lo
	}
	return x
}
