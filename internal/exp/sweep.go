package exp

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// sweepSpec parameterizes the shared Theorem-style sweep used by E1, E2
// and E3: for each (family, n, trial), build a graph, run a protocol to
// stabilization from a given initial configuration and record rounds.
type sweepSpec struct {
	expID    uint64
	families []familyGen
	sizes    []int
	trials   int
	protoFor func(g *graph.Graph) beep.Protocol
	init     core.InitMode
	// normLabel and norm define the theorem's normalization column
	// (e.g. rounds / log2 n); the spread of this column across sizes is
	// the empirical scaling verdict.
	normLabel string
	norm      func(n int) float64
}

// sweepCell measures one (family, size) cell over trials. Trials run
// concurrently: each derives its own seeds, so the recorded rounds are
// identical to a sequential execution.
func (s sweepSpec) sweepCell(cfg Config, fam familyGen, n int) ([]float64, error) {
	key := CellKey{Exp: s.expID, Family: fam.name, N: n, Trials: s.trials, Seed: cfg.Seed}
	if cfg.Manifest != nil {
		if cached, ok := cfg.Manifest.Lookup(key); ok && len(cached) == s.trials {
			return cached, nil
		}
	}
	rounds := make([]float64, s.trials)
	err := runTrials(s.trials, func(trial int) error {
		gseed := cellSeed(cfg.Seed, s.expID, uint64(n), uint64(trial), 1)
		g := fam.build(n, rng.New(gseed))
		res, err := core.Run(core.RunConfig{
			Graph:    g,
			Protocol: s.protoFor(g),
			Seed:     cellSeed(cfg.Seed, s.expID, uint64(n), uint64(trial), 2),
			Init:     s.init,
		})
		if err != nil {
			return fmt.Errorf("%s n=%d trial=%d: %w", fam.name, n, trial, err)
		}
		rounds[trial] = float64(res.Rounds)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.Manifest != nil {
		if err := cfg.Manifest.Record(key, rounds); err != nil {
			return nil, err
		}
	}
	return rounds, nil
}

// runSweep executes the sweep and renders its table and series.
func runSweep(cfg Config, s sweepSpec, title string) error {
	tab := &Table{
		Title:   title,
		Columns: []string{"family", "n", "trials", "rounds(mean)", "ci95", "median", "p90", "max", s.normLabel},
	}
	series := &Series{Title: title, XLabel: "n", YLabel: "rounds (mean)"}

	type famSeries struct {
		sizes  []int
		rounds []float64
	}
	perFamily := make(map[string]*famSeries)

	for _, fam := range s.families {
		for _, n := range s.sizes {
			rounds, err := s.sweepCell(cfg, fam, n)
			if err != nil {
				return err
			}
			sum := Summarize(rounds)
			ci := BootstrapMeanCI(rounds, 0.95, 1000, rng.New(cellSeed(cfg.Seed, s.expID, uint64(n), 0xc1)))
			tab.AddRow(fam.name, I(n), I(sum.N), F(sum.Mean), ci.String(), F(sum.Median), F(sum.P90), F(sum.Max), F(sum.Mean/s.norm(n)))
			series.Add(fam.name, float64(n), sum.Mean)
			fs := perFamily[fam.name]
			if fs == nil {
				fs = &famSeries{}
				perFamily[fam.name] = fs
			}
			fs.sizes = append(fs.sizes, n)
			fs.rounds = append(fs.rounds, sum.Mean)
		}
	}

	for _, name := range sortedKeys(perFamily) {
		fs := perFamily[name]
		v, err := JudgeScaling(fs.sizes, fs.rounds)
		if err != nil {
			continue
		}
		tab.Notes = append(tab.Notes, fmt.Sprintf(
			"%s: spread of rounds/log2(n) = %.2fx, of rounds/(log2 n·loglog2 n) = %.2fx, linear-in-log fit R²=%.3f",
			name, v.RatioLogSpread, v.RatioLogLogSpread, v.FitLog.R2))
	}

	if err := cfg.Render(tab); err != nil {
		return err
	}
	return cfg.Render(series)
}
