package exp

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestManifestRoundtripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := CellKey{Exp: 1, Family: "cycle", N: 64, Trials: 3, Seed: 7}
	k2 := CellKey{Exp: 1, Family: "torus", N: 64, Trials: 3, Seed: 7}
	if _, ok := m.Lookup(k1); ok {
		t.Fatal("empty manifest has records")
	}
	if err := m.Record(k1, []float64{10, 12, 11}); err != nil {
		t.Fatal(err)
	}
	if err := m.Record(k2, []float64{20, 22, 21}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 2 {
		t.Fatalf("reopened manifest has %d records, want 2", m2.Len())
	}
	got, ok := m2.Lookup(k1)
	if !ok || len(got) != 3 || got[0] != 10 || got[2] != 11 {
		t.Fatalf("k1 lookup: %v %v", got, ok)
	}
	// A different key must miss: changing any field invalidates.
	for _, k := range []CellKey{
		{Exp: 2, Family: "cycle", N: 64, Trials: 3, Seed: 7},
		{Exp: 1, Family: "cycle", N: 128, Trials: 3, Seed: 7},
		{Exp: 1, Family: "cycle", N: 64, Trials: 5, Seed: 7},
		{Exp: 1, Family: "cycle", N: 64, Trials: 3, Seed: 8},
	} {
		if _, ok := m2.Lookup(k); ok {
			t.Fatalf("mismatched key %+v hit the cache", k)
		}
	}
}

func TestManifestToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	k := CellKey{Exp: 3, Family: "gnp-avg8", N: 256, Trials: 2, Seed: 1}
	if err := m.Record(k, []float64{33, 35}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	// Simulate a crash mid-append: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"exp":3,"family":"gnp-avg8","n":512,"tri`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2, err := OpenManifest(path)
	if err != nil {
		t.Fatalf("torn manifest rejected: %v", err)
	}
	if m2.Len() != 1 {
		t.Fatalf("torn manifest loaded %d records, want 1", m2.Len())
	}
	if _, ok := m2.Lookup(k); !ok {
		t.Fatal("intact record lost with the torn tail")
	}
	// Appending after the truncation must yield a well-formed file.
	k2 := CellKey{Exp: 3, Family: "gnp-avg8", N: 512, Trials: 2, Seed: 1}
	if err := m2.Record(k2, []float64{40, 41}); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	m3, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if m3.Len() != 2 {
		t.Fatalf("post-repair manifest has %d records, want 2", m3.Len())
	}
}

func TestSweepCellResumesFromManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.manifest")
	m, err := OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	spec := sweepSpec{
		expID:  99,
		sizes:  []int{16},
		trials: 2,
		protoFor: func(*graph.Graph) beep.Protocol {
			return core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
		},
		init: core.InitRandom,
	}
	cyc := standardFamilies()[0] // cycle
	cfg := Config{Seed: 5, Manifest: m}

	first, err := spec.sweepCell(cfg, cyc, 16)
	if err != nil {
		t.Fatal(err)
	}
	key := CellKey{Exp: 99, Family: cyc.name, N: 16, Trials: 2, Seed: 5}
	if _, ok := m.Lookup(key); !ok {
		t.Fatal("completed cell not recorded")
	}

	// Poison the cache: if the second run recomputes instead of reusing
	// the manifest, it will not see these values.
	poisoned := []float64{-1, -2}
	if err := m.Record(key, poisoned); err != nil {
		t.Fatal(err)
	}
	second, err := spec.sweepCell(cfg, cyc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if second[0] != -1 || second[1] != -2 {
		t.Fatalf("sweepCell recomputed (%v) instead of resuming from the manifest", second)
	}
	// Without a manifest the cell recomputes and matches the original
	// measurement (derived seeds, no shared state).
	recomputed, err := spec.sweepCell(Config{Seed: 5}, cyc, 16)
	if err != nil {
		t.Fatal(err)
	}
	if recomputed[0] != first[0] || recomputed[1] != first[1] {
		t.Fatalf("recomputed cell %v differs from first run %v", recomputed, first)
	}
}
