package exp

import (
	"fmt"
	"time"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
)

// RunE19 measures how far one process scales when graph memory — not
// kernel arithmetic — is the constraint (ROADMAP open item 2): the same
// torus instance is run through the flat engine on each of the three
// graph backends, recording the two numbers that decide feasibility at
// n = 10⁸:
//
//   - ns/vertex/round — per-vertex cost of one simulated round from a
//     randomized (convergence-phase) configuration. Flat scaling means
//     this column is constant down each backend's rows.
//   - bytes/vertex — adjacency storage. The int32 CSR pays
//     4·(n+1+2m)/n, the delta-varint compact backend ~1–2 bytes per
//     edge endpoint, and the implicit backend zero: its neighborhoods
//     are synthesized on the fly from the closed-form torus rule.
//
// All three backends present the identical canonical view of the same
// torus, so executions are bit-for-bit trace-equivalent (pinned by
// TestEngineTraceEquivalenceBackends); E19 only times them. Quick mode
// sweeps n = 10⁴…10⁶; --full extends the implicit backend to n = 10⁸
// and caps the materialized backends at n = 10⁷ (above that, holding
// the rows is the problem E19 exists to demonstrate — see
// BENCH_scale.json for the container numbers).
func RunE19(cfg Config) error {
	trials := cfg.trials(1, 3)

	type size struct {
		n, rows, cols int
		fullOnly      bool
		implicitOnly  bool
	}
	sizes := []size{
		{n: 10_000, rows: 100, cols: 100},
		{n: 100_000, rows: 250, cols: 400},
		{n: 1_000_000, rows: 1000, cols: 1000},
		{n: 10_000_000, rows: 2500, cols: 4000, fullOnly: true},
		{n: 100_000_000, rows: 10_000, cols: 10_000, fullOnly: true, implicitOnly: true},
	}

	tab := &Table{
		Title:   "E19: backend scaling on the torus — ns/vertex/round and bytes/vertex (flat engine, randomized start, min over trials)",
		Columns: []string{"n", "backend", "bytes/vertex", "build-ms", "round-ms", "ns/vertex/round"},
		Notes: []string{
			"backends present the identical canonical torus: executions are bit-identical, only cost differs",
			"bytes/vertex counts adjacency storage only (graph.BytesOf); implicit = 0 is exact, not rounded",
			"build-ms: constructing the backend from the implicit generator (csr: Materialize, compact: Compress)",
			"flat scaling = constant ns/vertex/round down a backend's rows; the implicit column extends to n=10⁸ with --full",
		},
	}

	type backend struct {
		name  string
		build func(t graph.Topology) graph.Topology
	}
	backends := []backend{
		{name: "implicit", build: func(t graph.Topology) graph.Topology { return t }},
		{name: "compact", build: func(t graph.Topology) graph.Topology { return graph.Compress(t) }},
		{name: "csr", build: func(t graph.Topology) graph.Topology { return graph.Materialize(t) }},
	}

	for _, sz := range sizes {
		if sz.fullOnly && !cfg.Full {
			continue
		}
		base := graph.ImplicitTorus(sz.rows, sz.cols)
		for _, bk := range backends {
			if sz.implicitOnly && bk.name != "implicit" {
				continue
			}
			buildStart := time.Now()
			t := bk.build(base)
			buildMS := float64(time.Since(buildStart).Nanoseconds()) / 1e6
			roundMS, err := minRoundMS(t, cfg.Seed, trials)
			if err != nil {
				return fmt.Errorf("E19 %s n=%d: %w", bk.name, sz.n, err)
			}
			tab.AddRow(I(sz.n), bk.name,
				F(float64(graph.BytesOf(t))/float64(sz.n)),
				F(buildMS), F(roundMS),
				F(roundMS*1e6/float64(sz.n)))
		}
	}
	return cfg.Render(tab)
}

// minRoundMS times flat-engine rounds from a randomized configuration
// and returns the fastest per-round millisecond cost over the trials.
// The minimum is the right summary for a cost measurement: noise (GC,
// scheduling) only ever adds time.
func minRoundMS(t graph.Topology, seed uint64, trials int) (float64, error) {
	// warmup matches the root benchmark's measurement window
	// (RandomizeAll + 1 warm Step + 2 AllocsPerRun rounds precede its
	// timed region), so E19's ns/vertex/round rows are comparable with
	// BENCH.json columns at the same n.
	const (
		warmup = 3
		timed  = 4
	)
	best := 0.0
	for trial := 0; trial < trials; trial++ {
		proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
		net, err := beep.NewNetwork(t, proto, cellSeed(seed, 19, uint64(trial)),
			beep.WithEngine(beep.Flat))
		if err != nil {
			return 0, err
		}
		net.RandomizeAll()
		for i := 0; i < warmup; i++ {
			net.Step()
		}
		start := time.Now()
		for i := 0; i < timed; i++ {
			net.Step()
		}
		ms := float64(time.Since(start).Nanoseconds()) / 1e6 / timed
		if trial == 0 || ms < best {
			best = ms
		}
		net.Close()
	}
	return best, nil
}
