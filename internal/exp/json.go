package exp

import (
	"encoding/json"
	"fmt"
	"io"
)

// Renderable is anything the experiments emit: tables and series, in
// text or JSON form.
type Renderable interface {
	Render(w io.Writer) error
	RenderJSON(w io.Writer) error
}

var (
	_ Renderable = (*Table)(nil)
	_ Renderable = (*Series)(nil)
)

// Render writes r to the configured output in the configured format,
// so experiments stay agnostic of the output encoding.
func (c Config) Render(r Renderable) error {
	if c.JSON {
		return r.RenderJSON(c.Out)
	}
	return r.Render(c.Out)
}

// jsonTable is the stable machine-readable form of a Table.
type jsonTable struct {
	Kind    string     `json:"kind"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// RenderJSON writes the table as one JSON document.
func (t *Table) RenderJSON(w io.Writer) error {
	doc := jsonTable{
		Kind:    "table",
		Title:   t.Title,
		Columns: t.Columns,
		Rows:    t.Rows,
		Notes:   t.Notes,
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("render table json: %w", err)
	}
	return nil
}

// jsonSeries is the stable machine-readable form of a Series.
type jsonSeries struct {
	Kind   string             `json:"kind"`
	Title  string             `json:"title"`
	XLabel string             `json:"xLabel"`
	YLabel string             `json:"yLabel"`
	Lines  map[string][]Point `json:"lines"`
	Order  []string           `json:"order"`
}

// RenderJSON writes the series as one JSON document.
func (s *Series) RenderJSON(w io.Writer) error {
	doc := jsonSeries{
		Kind:   "series",
		Title:  s.Title,
		XLabel: s.XLabel,
		YLabel: s.YLabel,
		Lines:  s.Lines,
		Order:  s.order,
	}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("render series json: %w", err)
	}
	return nil
}
