package exp

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunTrialsStopsDispatchAfterError is the regression test for the
// early-exit bug: runTrials used to keep handing out trials after a
// failure, so a broken cell ground through its whole trial pool before
// reporting. After the fix the dispatcher stops at the first error and
// only the O(workers) in-flight trials still execute.
func TestRunTrialsStopsDispatchAfterError(t *testing.T) {
	const trials = 10_000
	boom := errors.New("boom")
	var started atomic.Int64
	err := runTrials(trials, func(trial int) error {
		started.Add(1)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	// Every running worker may start at most a handful of trials before
	// observing the failure flag; the pre-fix behavior starts all 10k.
	if n := started.Load(); n > trials/2 {
		t.Fatalf("dispatch did not stop after error: %d/%d trials started", n, trials)
	}
}

// TestRunTrialsCompletesWithoutError checks the happy path visits every
// trial exactly once.
func TestRunTrialsCompletesWithoutError(t *testing.T) {
	const trials = 257
	seen := make([]atomic.Int32, trials)
	if err := runTrials(trials, func(trial int) error {
		seen[trial].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("trial %d ran %d times", i, c)
		}
	}
}

// TestRunTrialsFirstErrorWins checks the reported error is stable: the
// first one observed, never overwritten by later failures.
func TestRunTrialsFirstErrorWins(t *testing.T) {
	first := errors.New("first")
	later := errors.New("later")
	err := runTrials(64, func(trial int) error {
		if trial == 0 {
			return first
		}
		return later
	})
	if err == nil {
		t.Fatal("want an error")
	}
	if !errors.Is(err, first) && !errors.Is(err, later) {
		t.Fatalf("unexpected error %v", err)
	}
}

// TestRunTrialsSmall covers the trials <= 1 fast paths.
func TestRunTrialsSmall(t *testing.T) {
	if err := runTrials(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("0 trials: %v", err)
	}
	ran := false
	if err := runTrials(1, func(trial int) error {
		if trial != 0 {
			t.Fatalf("trial = %d", trial)
		}
		ran = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single trial did not run")
	}
}
