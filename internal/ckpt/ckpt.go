// Package ckpt stores checkpoints as base + delta chains on disk: a
// full binary snapshot at <path> plus a sidecar <path>.delta holding
// framed incremental deltas appended since that base. The pair is the
// durable form of the engine's incremental checkpoints (beep.Delta):
// steady-state durability costs O(dirty words) per cadence tick, and a
// resume replays base + chain to the exact state a full snapshot would
// have held.
//
// Crash ordering. WriteBase truncates the delta sidecar BEFORE
// atomically replacing the base: a crash between the two steps leaves
// a valid (older) base with no deltas — a consistent, merely earlier,
// resume point. The reverse order could pair a new base with stale
// deltas that do not chain from it. Delta appends are fsynced whole
// frames; a crash mid-append leaves a torn tail that Load detects by
// frame length and discards — the chain up to the last complete frame
// is intact by construction.
//
// Chain validation. Load verifies everything before handing state to
// the caller: the base's integrity hash, every delta frame's own hash,
// the parent linkage (each delta's ParentHash must equal the hash of
// the state assembled so far) and round monotonicity. Any complete-
// but-invalid link is a hard error naming the link; no partially
// patched state is ever returned.
//
// Compaction. The writer starts a fresh base — collapsing the chain —
// whenever the engine reports everything dirty, the accumulated chain
// reaches CompactEvery links, or the delta would cover at least half
// the words (at that size a base costs about the same and resets the
// replay length). See NeedsBase.
package ckpt

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/atomicio"
	"repro/internal/beep"
)

// CompactEvery is the chain-length bound: once this many deltas have
// accumulated on a base, the next checkpoint is a fresh base. It caps
// both resume replay time and the sidecar's unbounded growth.
const CompactEvery = 64

// DeltaSuffix is appended to the base path to name the delta sidecar.
const DeltaSuffix = ".delta"

// Writer maintains one base + delta chain. It is not safe for
// concurrent use; the single supervisor/coordinator goroutine owns it.
type Writer struct {
	path       string
	deltaFile  *os.File
	haveBase   bool
	parentHash uint64
	deltas     int
}

// NewWriter creates a chain writer for path. The writer carries no
// state across processes: the first checkpoint it writes is always a
// base (callers resuming from an existing chain re-baseline anyway —
// a restored network reports DirtyAll).
func NewWriter(path string) *Writer {
	return &Writer{path: path}
}

// NeedsBase applies the compaction policy: write a base when no base
// exists yet this process, when the engine reports everything dirty,
// when the chain has reached CompactEvery links, or when the delta
// would cover at least half the slab words.
func (w *Writer) NeedsBase(dirtyAll bool, dirtyWords, totalWords int) bool {
	if !w.haveBase || dirtyAll || w.deltas >= CompactEvery {
		return true
	}
	return 2*dirtyWords >= totalWords
}

// ParentHash returns the integrity hash of the chain tip: the value
// the next delta must be captured against (beep.CheckpointDelta's
// parentHash argument).
func (w *Writer) ParentHash() uint64 { return w.parentHash }

// Deltas returns the number of chain links since the last base.
func (w *Writer) Deltas() int { return w.deltas }

// WriteBase persists c as a fresh base, collapsing any existing chain.
// The delta sidecar is truncated first (see the crash-ordering note in
// the package comment). Returns the encoded size in bytes.
func (w *Writer) WriteBase(c *beep.Checkpoint) (int, error) {
	if w.deltaFile != nil {
		w.deltaFile.Close()
		w.deltaFile = nil
	}
	if err := os.Remove(w.path + DeltaSuffix); err != nil && !os.IsNotExist(err) {
		return 0, fmt.Errorf("ckpt: truncate delta chain: %w", err)
	}
	buf, err := beep.EncodeSnapshot(c)
	if err != nil {
		return 0, fmt.Errorf("ckpt: write base: %w", err)
	}
	if err := atomicio.WriteFileBytes(w.path, buf); err != nil {
		return 0, fmt.Errorf("ckpt: write base: %w", err)
	}
	w.haveBase = true
	w.parentHash = c.Hash
	w.deltas = 0
	return len(buf), nil
}

// AppendDelta appends one sealed delta frame to the chain and fsyncs
// it. The delta must chain from the current tip. Returns the frame
// size in bytes.
func (w *Writer) AppendDelta(d *beep.Delta) (int, error) {
	if !w.haveBase {
		return 0, errors.New("ckpt: append delta with no base written")
	}
	if d.ParentHash != w.parentHash {
		return 0, fmt.Errorf("ckpt: delta parent hash %#x does not chain from tip %#x", d.ParentHash, w.parentHash)
	}
	frame, err := beep.EncodeDelta(d)
	if err != nil {
		return 0, fmt.Errorf("ckpt: append delta: %w", err)
	}
	if w.deltaFile == nil {
		f, err := os.OpenFile(w.path+DeltaSuffix, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return 0, fmt.Errorf("ckpt: append delta: %w", err)
		}
		w.deltaFile = f
	}
	if _, err := w.deltaFile.Write(frame); err != nil {
		return 0, fmt.Errorf("ckpt: append delta: %w", err)
	}
	if err := w.deltaFile.Sync(); err != nil {
		return 0, fmt.Errorf("ckpt: sync delta chain: %w", err)
	}
	w.parentHash = d.Hash
	w.deltas++
	return len(frame), nil
}

// Close releases the delta sidecar handle. The chain on disk stays
// valid; a new writer over the same path starts with a fresh base.
func (w *Writer) Close() error {
	if w.deltaFile != nil {
		err := w.deltaFile.Close()
		w.deltaFile = nil
		return err
	}
	return nil
}

// ChainInfo describes a loaded chain.
type ChainInfo struct {
	// BaseBytes is the size of the base file; BaseFormat is "v3-binary"
	// or "v2-json".
	BaseBytes  int64
	BaseFormat string
	// Deltas is the number of valid chain links applied; DeltaBytes the
	// sidecar bytes they span.
	Deltas     int
	DeltaBytes int64
	// TornTail reports a truncated trailing frame (a crash mid-append),
	// discarded as permitted by the append protocol.
	TornTail bool
	// Round and Hash describe the assembled checkpoint.
	Round int
	Hash  uint64
}

// Load reads the base at path, validates and applies any delta chain
// in the sidecar, and returns the assembled (sealed, validated)
// checkpoint. The base may be in either snapshot format (v3 binary or
// v2 JSON, auto-detected). A torn trailing frame is discarded; any
// complete-but-invalid link — bad frame, failed hash, broken parent
// linkage, non-monotonic round — is a hard error naming the link, and
// no state is returned.
func Load(path string) (*beep.Checkpoint, *ChainInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	base, err := beep.DecodeCheckpointAuto(data)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: base %s: %w", path, err)
	}
	info := &ChainInfo{BaseBytes: int64(len(data)), BaseFormat: "v3-binary"}
	if len(data) > 0 && data[0] != 'B' {
		info.BaseFormat = "v2-json"
	}

	chain, err := os.ReadFile(path + DeltaSuffix)
	if err != nil {
		if os.IsNotExist(err) {
			info.Round, info.Hash = base.Round, base.Hash
			return base, info, nil
		}
		return nil, nil, fmt.Errorf("ckpt: delta chain: %w", err)
	}
	info.DeltaBytes = int64(len(chain))

	// Parse and validate the whole chain before applying anything:
	// every frame's own hash, the parent linkage and round monotonicity.
	var deltas []*beep.Delta
	tip := base.Hash
	round := base.Round
	rest := chain
	for len(rest) > 0 {
		d, next, err := beep.DecodeDeltaFrame(rest)
		if err != nil {
			if errors.Is(err, beep.ErrTornFrame) {
				// Crash mid-append: the chain up to here is complete.
				info.TornTail = true
				break
			}
			return nil, nil, fmt.Errorf("ckpt: delta link %d: %w", len(deltas)+1, err)
		}
		if d.ParentHash != tip {
			return nil, nil, fmt.Errorf("ckpt: delta link %d (round %d) chains from %#x, tip is %#x: chain broken",
				len(deltas)+1, d.Round, d.ParentHash, tip)
		}
		if d.Round < round {
			return nil, nil, fmt.Errorf("ckpt: delta link %d rewinds round %d below %d", len(deltas)+1, d.Round, round)
		}
		tip = d.Hash
		round = d.Round
		deltas = append(deltas, d)
		rest = next
	}
	for i, d := range deltas {
		if err := beep.ApplyDelta(base, d); err != nil {
			return nil, nil, fmt.Errorf("ckpt: delta link %d: %w", i+1, err)
		}
	}
	base.Seal()
	info.Deltas = len(deltas)
	info.Round, info.Hash = base.Round, base.Hash
	return base, info, nil
}
