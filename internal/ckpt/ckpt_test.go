package ckpt

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// chainNet builds a stabilized sparse Flat network on the real MIS
// protocol, so the deltas under test come from genuine activity-gated
// rounds (the dirty masks the engine accumulates), not hand-marked
// vertices.
func chainNet(t *testing.T) *beep.Network {
	t.Helper()
	g := graph.GNPAvgDegree(600, 6, rng.New(4))
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(g, proto, 7, beep.WithEngine(beep.Flat))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(net.Close)
	net.RandomizeAll()
	var probe core.State
	if _, ok := net.Run(100_000, func() bool {
		return probe.Refresh(net) == nil && probe.Stabilized()
	}); !ok {
		t.Fatal("no stabilization")
	}
	return net
}

// perturbAndSettle injects a small fault and runs a few sparse rounds,
// so the network accumulates genuine dirty words since the last
// checkpoint.
func perturbAndSettle(t *testing.T, net *beep.Network, src *rng.Source, rounds int) {
	t.Helper()
	verts := []int{src.Intn(net.N()), src.Intn(net.N()), src.Intn(net.N())}
	if err := net.Corrupt(verts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		net.Step()
	}
}

// buildChain writes a base plus count deltas driven by real sparse
// rounds, returning the writer, the per-link frame sizes, and the
// network (whose live state equals the chain tip).
func buildChain(t *testing.T, path string, net *beep.Network, count int) (*Writer, []int) {
	t.Helper()
	w := NewWriter(path)
	t.Cleanup(func() { w.Close() })
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteBase(cp); err != nil {
		t.Fatal(err)
	}
	src := rng.New(31)
	var sizes []int
	for i := 0; i < count; i++ {
		perturbAndSettle(t, net, src, 3)
		if net.DirtyAll() {
			t.Fatal("small perturbation saturated the dirty mask")
		}
		d, err := net.CheckpointDelta(w.ParentHash())
		if err != nil {
			t.Fatal(err)
		}
		nbytes, err := w.AppendDelta(d)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, nbytes)
	}
	return w, sizes
}

// mustEqualLive asserts the loaded chain reproduces the live network's
// full checkpoint bit-exactly.
func mustEqualLive(t *testing.T, path string, net *beep.Network) *ChainInfo {
	t.Helper()
	got, info, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != want.Hash {
		t.Fatalf("assembled hash %#x, live hash %#x", got.Hash, want.Hash)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("assembled checkpoint not bit-identical to live state")
	}
	return info
}

func TestChainBaseOnlyRestore(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	_, _ = buildChain(t, path, net, 0)
	info := mustEqualLive(t, path, net)
	if info.Deltas != 0 || info.TornTail {
		t.Fatalf("base-only chain reports %d deltas, torn=%v", info.Deltas, info.TornTail)
	}
	if info.BaseFormat != "v3-binary" {
		t.Fatalf("base format %q", info.BaseFormat)
	}
}

func TestChainSparseRoundsBitExact(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	_, _ = buildChain(t, path, net, 5)
	info := mustEqualLive(t, path, net)
	if info.Deltas != 5 {
		t.Fatalf("chain reports %d deltas, want 5", info.Deltas)
	}
}

func TestChainTornTailDiscarded(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	_, sizes := buildChain(t, path, net, 3)
	// Snapshot the expected state at the last complete link.
	want, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: cut the final frame short.
	chain, err := os.ReadFile(path + DeltaSuffix)
	if err != nil {
		t.Fatal(err)
	}
	torn := chain[:len(chain)-sizes[2]/2]
	if err := os.WriteFile(path+DeltaSuffix, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info, err := Load(path)
	if err != nil {
		t.Fatalf("torn tail not recovered: %v", err)
	}
	if !info.TornTail || info.Deltas != 2 {
		t.Fatalf("torn chain reports deltas=%d torn=%v, want 2/true", info.Deltas, info.TornTail)
	}
	// The recovered state is the chain up to link 2 — NOT the live
	// state (link 3 was lost), but a valid earlier round.
	if got.Round >= want.Round && len(chain) != len(torn) {
		t.Fatalf("torn recovery round %d not behind tip %d", got.Round, want.Round)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChainTamperedLinkNamed(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	_, sizes := buildChain(t, path, net, 3)
	chain, err := os.ReadFile(path + DeltaSuffix)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside link 2.
	tam := append([]byte(nil), chain...)
	tam[sizes[0]+sizes[1]-10] ^= 0x20
	if err := os.WriteFile(path+DeltaSuffix, tam, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(path)
	if err == nil {
		t.Fatal("tampered middle link accepted")
	}
	if !strings.Contains(err.Error(), "link 2") {
		t.Fatalf("diagnostic does not name link 2: %v", err)
	}
}

func TestChainMissingMiddleLink(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	_, sizes := buildChain(t, path, net, 3)
	chain, err := os.ReadFile(path + DeltaSuffix)
	if err != nil {
		t.Fatal(err)
	}
	// Splice link 2 out entirely: link 3 then chains from a tip that
	// was never assembled.
	cut := append([]byte(nil), chain[:sizes[0]]...)
	cut = append(cut, chain[sizes[0]+sizes[1]:]...)
	if err := os.WriteFile(path+DeltaSuffix, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(path)
	if err == nil {
		t.Fatal("chain with missing middle link accepted")
	}
	if !strings.Contains(err.Error(), "link 2") || !strings.Contains(err.Error(), "chain broken") {
		t.Fatalf("diagnostic does not name the broken link: %v", err)
	}
}

func TestChainCompaction(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	w, _ := buildChain(t, path, net, 2)
	if w.Deltas() != 2 {
		t.Fatalf("writer reports %d deltas", w.Deltas())
	}
	// Policy checks.
	total := (net.N() + 63) / 64
	if w.NeedsBase(false, 1, total) {
		t.Fatal("tiny delta forced a base")
	}
	if !w.NeedsBase(true, 0, total) {
		t.Fatal("dirty-all did not force a base")
	}
	if !w.NeedsBase(false, total/2+1, total) {
		t.Fatal("half-dirty did not force a base")
	}
	// Compact: a new base must truncate the sidecar and still restore
	// bit-exactly.
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteBase(cp); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + DeltaSuffix); !os.IsNotExist(err) {
		t.Fatal("compaction left the delta sidecar behind")
	}
	info := mustEqualLive(t, path, net)
	if info.Deltas != 0 {
		t.Fatalf("compacted chain reports %d deltas", info.Deltas)
	}
	// And the chain keeps growing cleanly on the new base.
	src := rng.New(77)
	perturbAndSettle(t, net, src, 3)
	d, err := net.CheckpointDelta(w.ParentHash())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendDelta(d); err != nil {
		t.Fatal(err)
	}
	mustEqualLive(t, path, net)
}

func TestChainV2JSONBase(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := beep.WriteCheckpoint(f, cp); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, info, err := Load(path)
	if err != nil {
		t.Fatalf("v2 JSON base rejected: %v", err)
	}
	if info.BaseFormat != "v2-json" {
		t.Fatalf("base format %q, want v2-json", info.BaseFormat)
	}
	if got.Hash != cp.Hash {
		t.Fatalf("v2 base hash %#x, want %#x", got.Hash, cp.Hash)
	}
	// Restore works onto a fresh network.
	g := net.Graph()
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	fresh, err := beep.NewNetwork(g, proto, 123, beep.WithEngine(beep.Flat))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if err := fresh.Restore(got); err != nil {
		t.Fatal(err)
	}
}

func TestChainAppendGuards(t *testing.T) {
	net := chainNet(t)
	path := filepath.Join(t.TempDir(), "ck")
	w := NewWriter(path)
	defer w.Close()
	src := rng.New(5)
	cp, err := net.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	perturbAndSettle(t, net, src, 2)
	d, err := net.CheckpointDelta(cp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.AppendDelta(d); err == nil {
		t.Fatal("append with no base accepted")
	}
	if !w.NeedsBase(false, 0, 1) {
		t.Fatal("fresh writer does not demand a base")
	}
	if _, err := w.WriteBase(cp); err != nil {
		t.Fatal(err)
	}
	wrong := *d
	wrong.ParentHash ^= 1
	wrong.Seal()
	if _, err := w.AppendDelta(&wrong); err == nil {
		t.Fatal("delta not chaining from tip accepted")
	}
	if _, err := w.AppendDelta(d); err != nil {
		t.Fatal(err)
	}
}
