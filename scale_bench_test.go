package repro

import (
	"bufio"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/graph"
)

// Scale benchmarks: the BENCH_scale.json provenance. Where the 4k/1M
// round benches measure kernel cost, these measure the memory wall —
// the sizes where holding the adjacency is the problem and the implicit
// and compact backends earn their keep. All run the sequential flat
// engine from a randomized (convergence-phase) configuration, and all
// assert the flat engine's 0-steady-state-allocs contract before the
// timed loop: on the synthesizing backends every neighbor row is
// decoded into preallocated scratch, so a regression that starts
// allocating per round at n=10⁷ costs seconds per step and must fail
// loudly here rather than show up as mystery GC time.

// benchScaleRound runs the shared warmup / alloc-assert / timed-loop
// harness and reports ns/vertex, adjacency bytes/vertex and the
// process's peak RSS alongside ns/op.
func benchScaleRound(b *testing.B, t graph.Topology) {
	b.Helper()
	n := t.N()
	proto := core.NewAlg1(core.KnownMaxDegreeExact(core.DefaultC1KnownDelta))
	net, err := beep.NewNetwork(t, proto, 3, beep.WithEngine(beep.Flat))
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	net.RandomizeAll()
	net.Step() // warm lazily sized delivery buffers
	if allocs := testing.AllocsPerRun(1, func() { net.Step() }); allocs > 0 {
		b.Fatalf("steady-state round allocates (%v allocs/round) on backend %s", allocs, t.Name())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/vertex")
	b.ReportMetric(float64(graph.BytesOf(t))/float64(n), "graph-B/vertex")
	if rss, ok := peakRSSBytes(); ok {
		b.ReportMetric(rss/(1<<20), "peakRSS-MB")
	}
}

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc; absent on non-Linux hosts, in which case the metric is simply
// not reported.
func peakRSSBytes() (float64, bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "VmHWM:" {
			kb, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return 0, false
			}
			return kb * 1024, true
		}
	}
	return 0, false
}

// BenchmarkRound10M: one flat-engine round at n = 10⁷ on the implicit
// torus — zero adjacency bytes, every row synthesized on the fly. This
// is the CI scale smoke (`-benchtime=1x` under a GOMEMLIMIT ceiling in
// ci.yml): it proves the 10⁷ path builds, runs and stays allocation-free
// on every push. Skipped under -short (network construction alone
// allocates ~1 GB of per-vertex state).
func BenchmarkRound10M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^7 round benchmark skipped in -short mode")
	}
	benchScaleRound(b, graph.ImplicitTorus(2500, 4000))
}

// BenchmarkRound100M: the acceptance benchmark — one n = 10⁸ round
// in-process. Two backends:
//
//   - implicit-torus: the 10000×10000 torus, adjacency fully implicit.
//   - compact-rgg: a lattice unit-disk (RGG-style wireless deployment,
//     the paper's motivating topology) delta-varint compressed; the
//     rows are materialized but cost ~2 bytes/endpoint instead of 4.
//
// Gated behind BENCH_SCALE_100M=1 on top of -short: a single round
// costs seconds and network construction ~8 GB of per-vertex simulator
// state (signals, sources, machine slabs — independent of the graph
// backend), so this must never run in a default `go test -bench .`.
// The peak-RSS budget is 16 GB on the implicit torus — 2× the observed
// ~7.8 GB of per-vertex simulator state; the graph contributes
// nothing. Observed container numbers live in BENCH_scale.json.
func BenchmarkRound100M(b *testing.B) {
	if testing.Short() {
		b.Skip("n=10^8 round benchmark skipped in -short mode")
	}
	if os.Getenv("BENCH_SCALE_100M") == "" {
		b.Skip("set BENCH_SCALE_100M=1 to run the n=10^8 round benchmark (needs tens of GB and minutes of wall clock)")
	}
	b.Run("implicit-torus", func(b *testing.B) {
		benchScaleRound(b, graph.ImplicitTorus(10_000, 10_000))
		if rss, ok := peakRSSBytes(); ok && rss > 16<<30 {
			b.Fatalf("peak RSS %.1f GB exceeds the 16 GB budget", rss/(1<<30))
		}
	})
	b.Run("compact-rgg", func(b *testing.B) {
		const side = 10_000
		// Radius √2.56 ⇒ the 8-neighbor lattice stencil, average degree
		// 8 like the 1M RGG benches.
		udgt, err := graph.ImplicitUnitDiskGridTorus(side, side, math.Sqrt(2.56))
		if err != nil {
			b.Fatal(err)
		}
		benchScaleRound(b, graph.Compress(udgt))
	})
}
