package repro

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/beep"
	"repro/internal/core"
	"repro/internal/rng"
)

// Instance is a live, steppable execution of one of the paper's
// algorithms: the round-level API for self-stabilization studies. It
// exposes single-round stepping, legality queries, and transient-fault
// injection. Close releases engine resources when the parallel engine
// is used.
type Instance struct {
	net      *beep.Network
	faultSrc *rng.Source
	// probe is the reused level snapshot behind the legality queries;
	// refreshing it per call keeps the incremental stabilization
	// detector warm, so per-round Stabilized polls are cheap.
	probe core.State
}

// NewInstance builds a steppable execution on g with the given options.
func NewInstance(g *Graph, opts ...Option) (*Instance, error) {
	if g == nil {
		return nil, errors.New("repro: nil graph")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	proto, err := o.protocol()
	if err != nil {
		return nil, err
	}
	init, err := o.initMode()
	if err != nil {
		return nil, err
	}
	engine := beep.Sequential
	if o.parallel {
		engine = beep.Parallel
	}
	net, err := beep.NewNetwork(g.g, proto, o.seed, beep.WithEngine(engine), beep.WithNoise(o.noise), beep.WithSleep(o.sleep))
	if err != nil {
		return nil, err
	}
	inst := &Instance{net: net, faultSrc: rng.New(o.seed ^ 0xfa17)}
	switch init {
	case core.InitRandom:
		net.RandomizeAll()
	case core.InitAdversarial:
		for v := 0; v < net.N(); v++ {
			if m, ok := net.Machine(v).(core.Leveled); ok {
				m.SetLevel(-m.Cap())
			}
		}
	}
	return inst, nil
}

// Step executes one synchronous beeping round.
func (i *Instance) Step() { i.net.Step() }

// Rounds returns the number of completed rounds.
func (i *Instance) Rounds() int { return i.net.Round() }

// Stabilized reports whether the network is in a legal configuration:
// the claimed set is a maximal independent set and every vertex is
// stable.
func (i *Instance) Stabilized() (bool, error) {
	if err := i.probe.Refresh(i.net); err != nil {
		return false, err
	}
	return i.probe.Stabilized(), nil
}

// StableVertices returns |S_t|, the number of vertices whose output has
// stabilized — a convergence progress measure.
func (i *Instance) StableVertices() (int, error) {
	if err := i.probe.Refresh(i.net); err != nil {
		return 0, err
	}
	return i.probe.StableCount(), nil
}

// MIS returns the current claimed MIS vertices in ascending order. The
// set is only guaranteed maximal and independent once Stabilized
// reports true.
func (i *Instance) MIS() ([]int, error) {
	if err := i.probe.Refresh(i.net); err != nil {
		return nil, err
	}
	var out []int
	for v, in := range i.probe.MISMask() {
		if in {
			out = append(out, v)
		}
	}
	return out, nil
}

// Level returns the current level ℓ(v) of a vertex, the paper's whole
// per-vertex state.
func (i *Instance) Level(v int) (int, error) {
	if v < 0 || v >= i.net.N() {
		return 0, fmt.Errorf("repro: vertex %d out of range", v)
	}
	m, ok := i.net.Machine(v).(core.Leveled)
	if !ok {
		return 0, fmt.Errorf("repro: machine %T has no level", i.net.Machine(v))
	}
	return m.Level(), nil
}

// InjectFault corrupts the states of k uniformly chosen vertices
// (transient RAM faults). The algorithm will re-stabilize within the
// same asymptotic round bounds.
func (i *Instance) InjectFault(k int) error {
	n := i.net.N()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	perm := i.faultSrc.Perm(n)
	return i.net.Corrupt(perm[:k])
}

// RunUntilStabilized steps until the network is legal or maxRounds
// rounds pass, returning the rounds consumed by this call.
func (i *Instance) RunUntilStabilized(maxRounds int) (int, error) {
	start := i.net.Round()
	stop := func() bool {
		ok, err := i.Stabilized()
		return err == nil && ok
	}
	_, ok := i.net.Run(maxRounds, stop)
	if !ok {
		return i.net.Round() - start, fmt.Errorf("%w: after %d rounds", ErrNotStabilized, maxRounds)
	}
	return i.net.Round() - start, nil
}

// Save writes a resumable JSON checkpoint of the execution: the round
// counter, every vertex's algorithm state, and every random stream. A
// later Load on an instance built with the same graph and options
// resumes the exact execution.
func (i *Instance) Save(w io.Writer) error {
	cp, err := i.net.Checkpoint()
	if err != nil {
		return err
	}
	return beep.WriteCheckpoint(w, cp)
}

// Load restores a checkpoint written by Save. The instance must have
// been built on the same graph with the same algorithm.
func (i *Instance) Load(r io.Reader) error {
	cp, err := beep.ReadCheckpoint(r)
	if err != nil {
		return err
	}
	return i.net.Restore(cp)
}

// Close releases the engine's worker goroutines; safe to call multiple
// times and required only for the parallel engine.
func (i *Instance) Close() { i.net.Close() }
